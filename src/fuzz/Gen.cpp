//===- fuzz/Gen.cpp --------------------------------------------*- C++ -*-===//

#include "fuzz/Gen.h"

#include "ir/Builder.h"
#include "ir/Verifier.h"
#include "support/Error.h"
#include "support/Rng.h"

#include <algorithm>
#include <limits>

using namespace dmll;
using namespace dmll::fuzz;

namespace {

/// What is visible at a generation site: scalar expressions by type, array
/// expressions (inputs and shared loop results), and reads that are known
/// in-bounds because the enclosing loop ranges over exactly len(array).
struct Env {
  std::vector<ExprRef> I64s;
  std::vector<ExprRef> F64s;
  std::vector<ExprRef> Arrays;
  /// Arrays indexed safely by the current loop index (loop size == len(A)).
  std::vector<std::pair<ExprRef, ExprRef>> Aligned; // (array, index sym)
  int LoopDepth = 0;
};

class Gen {
public:
  Gen(uint64_t Seed, const GenOptions &O)
      : R(Seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull), O(O),
        Adversarial(static_cast<int>(R.nextBelow(100)) < O.AdversarialPct) {}

  FuzzCase run(uint64_t Seed) {
    FuzzCase C;
    C.Seed = Seed;
    genInputs(C);
    Env E;
    for (const auto &In : Inputs) {
      if (In->type()->isArray())
        E.Arrays.push_back(In);
      else if (In->type()->isInt())
        E.I64s.push_back(In);
      else if (In->type()->isFloat())
        E.F64s.push_back(In);
    }
    // 1-3 roots; later roots can share earlier loop results (DAG sharing,
    // which CSE and the interpreter's memo table both key on).
    size_t NumRoots = 1 + R.nextBelow(3);
    std::vector<ExprRef> Roots;
    for (size_t I = 0; I < NumRoots; ++I) {
      ExprRef Root = genRoot(E);
      if (Root->type()->isArray() && chance(30))
        E.Arrays.push_back(Root);
      Roots.push_back(std::move(Root));
    }
    if (Roots.size() == 1) {
      C.P.Result = Roots[0];
    } else {
      std::vector<Type::Field> Fields;
      for (size_t I = 0; I < Roots.size(); ++I)
        Fields.push_back({"r" + std::to_string(I), Roots[I]->type()});
      C.P.Result = makeStruct(std::move(Fields), std::move(Roots));
    }
    C.P.Inputs = Inputs;
    C.Inputs = std::move(Data);
    return C;
  }

private:
  Rng R;
  const GenOptions &O;
  std::vector<std::shared_ptr<const InputExpr>> Inputs;
  InputMap Data;
  bool Adversarial;     ///< this program gets one adversarial site
  bool AdvPlaced = false;

  bool chance(int Pct) { return static_cast<int>(R.nextBelow(100)) < Pct; }
  int64_t irange(int64_t Lo, int64_t Hi) { // inclusive
    return Lo + static_cast<int64_t>(R.nextBelow(
                    static_cast<uint64_t>(Hi - Lo + 1)));
  }

  LayoutHint randHint() {
    switch (R.nextBelow(3)) {
    case 0:
      return LayoutHint::Default;
    case 1:
      return LayoutHint::Local;
    default:
      return LayoutHint::Partitioned;
    }
  }

  //===--------------------------------------------------------------------===//
  // Inputs.
  //===--------------------------------------------------------------------===//

  void genInputs(FuzzCase &) {
    size_t N = 1 + R.nextBelow(3);
    for (size_t I = 0; I < N; ++I) {
      std::string Name = "in" + std::to_string(I);
      // 0-length inputs are part of the grammar on purpose: empty loops,
      // empty reductions and all-filtered groups are classic rewrite bugs.
      int64_t Len = chance(12) ? 0 : irange(1, O.MaxInputLen);
      switch (R.nextBelow(6)) {
      case 0:
      case 1: { // Array[i64]
        std::vector<int64_t> Xs(static_cast<size_t>(Len));
        for (int64_t &X : Xs)
          X = irange(-20, 20);
        addInput(Name, Type::arrayOf(Type::i64()), Value::arrayOfInts(Xs));
        break;
      }
      case 2:
      case 3: { // Array[f64]
        std::vector<double> Xs(static_cast<size_t>(Len));
        for (double &X : Xs)
          X = R.nextGaussian() * 2.0;
        addInput(Name, Type::arrayOf(Type::f64()), Value::arrayOfDoubles(Xs));
        break;
      }
      case 4: { // Array[{a:i64, b:f64}] — exercises AoS-to-SoA + DFE
        TypeRef Elem = Type::structOf({{"a", Type::i64()},
                                       {"b", Type::f64()}});
        ArrayData Elems;
        for (int64_t K = 0; K < Len; ++K)
          Elems.push_back(Value::makeStruct(
              {Value(irange(-10, 10)), Value(R.nextGaussian())}));
        addInput(Name, Type::arrayOf(Elem),
                 Value::makeArray(std::move(Elems)));
        break;
      }
      default: { // scalar i64
        addInput(Name, Type::i64(), Value(irange(-4, 12)));
        break;
      }
      }
    }
  }

  void addInput(const std::string &Name, TypeRef Ty, Value V) {
    Inputs.push_back(input(Name, std::move(Ty), randHint()));
    Data.emplace(Name, std::move(V));
  }

  //===--------------------------------------------------------------------===//
  // Scalar expressions. AllowLoops gates Reduce subloops; float expressions
  // feeding conditions, keys, or int casts must stay loop-free so parallel
  // reassociation cannot flip a discrete decision.
  //===--------------------------------------------------------------------===//

  ExprRef constI64Tame() {
    static const int64_t Pool[] = {0, 1, 2, 3, -1, -2, 5, 7};
    if (chance(60))
      return constI64(Pool[R.nextBelow(sizeof(Pool) / sizeof(Pool[0]))]);
    return constI64(irange(-6, 9));
  }

  ExprRef constF64Tame() {
    static const double Pool[] = {0.0, 1.0, -1.0, 0.5, 2.5, -3.25};
    if (chance(50))
      return constF64(Pool[R.nextBelow(sizeof(Pool) / sizeof(Pool[0]))]);
    return constF64(static_cast<double>(irange(-40, 40)) / 8.0);
  }

  /// i64-element arrays currently in scope.
  std::vector<ExprRef> arraysOf(const Env &E, const TypeRef &Elem) {
    std::vector<ExprRef> Out;
    for (const ExprRef &A : E.Arrays)
      if (sameType(A->type()->elem(), Elem))
        Out.push_back(A);
    return Out;
  }

  /// A read that cannot trap: aligned A(i) when available, else the
  /// select-guarded `len==0 ? dflt : A(abs(idx) % len)` form.
  ExprRef safeRead(const Env &E, const ExprRef &Arr, int Depth) {
    for (const auto &[A, I] : E.Aligned)
      if (A.get() == Arr.get())
        return arrayRead(A, I);
    ExprRef Idx = genI64(E, Depth - 1, /*AllowLoops=*/false);
    ExprRef Len = arrayLen(Arr);
    ExprRef Guarded = arrayRead(
        Arr, binop(BinOpKind::Mod, unop(UnOpKind::Abs, Idx), Len));
    ExprRef Dflt = zeroExprOf(Arr->type()->elem());
    return select(binop(BinOpKind::Eq, Len, constI64(0)), Dflt, Guarded);
  }

  /// A zero-valued expression of scalar/struct type (used as guard default).
  ExprRef zeroExprOf(const TypeRef &Ty) {
    if (Ty->isInt())
      return constI64(0);
    if (Ty->isFloat())
      return constF64(0.0);
    if (Ty->isBool())
      return constBool(false);
    if (Ty->isStruct()) {
      std::vector<Type::Field> Fields = Ty->fields();
      std::vector<ExprRef> Vals;
      for (const auto &F : Fields)
        Vals.push_back(zeroExprOf(F.Ty));
      return makeStruct(std::move(Fields), std::move(Vals));
    }
    // Arrays: an empty Collect of the right element type.
    Generator G;
    G.Kind = GenKind::Collect;
    G.Value = indexFunc("z", [&](const ExprRef &) {
      return zeroExprOf(Ty->elem());
    });
    return singleLoop(constI64(0), std::move(G));
  }

  /// The single adversarial site: unguarded division/modulo (divisor can be
  /// 0 or -1 against an INT64_MIN numerator) or an unguarded array read.
  ExprRef adversarialI64(const Env &E, int Depth) {
    AdvPlaced = true;
    switch (R.nextBelow(3)) {
    case 0: { // INT64_MIN / smallExpr: hits /0 and the /-1 overflow trap.
      // The quotient is clamped before it escapes so a surviving INT64_MIN
      // (e.g. divisor 1) cannot feed signed-overflow UB in outer arithmetic.
      ExprRef Num = constI64(chance(50)
                                 ? std::numeric_limits<int64_t>::min()
                                 : std::numeric_limits<int64_t>::max());
      ExprRef Den = genI64(E, 1, false);
      ExprRef Q =
          binop(chance(50) ? BinOpKind::Div : BinOpKind::Mod, Num, Den);
      return binop(BinOpKind::Min,
                   binop(BinOpKind::Max, Q, constI64(-1000)),
                   constI64(1000));
    }
    case 1: { // unguarded division by a data-dependent divisor
      ExprRef Num = genI64(E, Depth - 1, false);
      ExprRef Den = genI64(E, 1, false);
      return binop(chance(50) ? BinOpKind::Div : BinOpKind::Mod, Num, Den);
    }
    default: { // unguarded read: index may be out of range
      std::vector<ExprRef> As = arraysOf(E, Type::i64());
      if (As.empty())
        return binop(BinOpKind::Div, genI64(E, 1, false),
                     genI64(E, 1, false));
      return arrayRead(As[R.nextBelow(As.size())], genI64(E, 1, false));
    }
    }
  }

  ExprRef genI64(const Env &E, int Depth, bool AllowLoops) {
    if (Adversarial && !AdvPlaced && Depth >= 2 && chance(25))
      return adversarialI64(E, Depth);
    if (Depth <= 0 || chance(25)) {
      // Leaves: constants, in-scope symbols, lengths.
      size_t NumSyms = E.I64s.size();
      uint64_t Pick = R.nextBelow(3 + NumSyms);
      if (Pick < NumSyms)
        return E.I64s[Pick];
      if (!E.Arrays.empty() && chance(40))
        return arrayLen(E.Arrays[R.nextBelow(E.Arrays.size())]);
      return constI64Tame();
    }
    switch (R.nextBelow(8)) {
    case 0:
    case 1: {
      static const BinOpKind Ops[] = {BinOpKind::Add, BinOpKind::Sub,
                                      BinOpKind::Min, BinOpKind::Max};
      return binop(Ops[R.nextBelow(4)], genI64(E, Depth - 1, AllowLoops),
                   genI64(E, Depth - 1, AllowLoops));
    }
    case 2: // multiply by a small constant only (bounded growth)
      return binop(BinOpKind::Mul, genI64(E, Depth - 1, AllowLoops),
                   constI64(irange(-4, 4)));
    case 3: { // guarded division / modulo
      ExprRef A = genI64(E, Depth - 1, AllowLoops);
      ExprRef D = genI64(E, Depth - 1, false);
      ExprRef Guarded = binop(chance(50) ? BinOpKind::Div : BinOpKind::Mod,
                              A, D);
      return select(binop(BinOpKind::Eq, D, constI64(0)), constI64Tame(),
                    Guarded);
    }
    case 4: {
      std::vector<ExprRef> As = arraysOf(E, Type::i64());
      if (!As.empty())
        return safeRead(E, As[R.nextBelow(As.size())], Depth);
      return genI64(E, Depth - 1, AllowLoops);
    }
    case 5:
      return select(genBool(E, Depth - 1), genI64(E, Depth - 1, AllowLoops),
                    genI64(E, Depth - 1, AllowLoops));
    case 6: // cast of a clamped, loop-free float
      if (chance(50)) {
        ExprRef F = genF64(E, Depth - 1, false);
        ExprRef Clamped = binop(
            BinOpKind::Min, binop(BinOpKind::Max, F, constF64(-1.0e9)),
            constF64(1.0e9));
        return castTo(Type::i64(), Clamped);
      }
      return unop(chance(50) ? UnOpKind::Neg : UnOpKind::Abs,
                  binop(BinOpKind::Max,
                        genI64(E, Depth - 1, AllowLoops),
                        constI64(-1000000)));
    default:
      if (AllowLoops && E.LoopDepth < O.MaxLoopDepth)
        return genReduceLoop(E, Type::i64());
      return genI64(E, Depth - 1, AllowLoops);
    }
  }

  ExprRef genF64(const Env &E, int Depth, bool AllowLoops) {
    if (Depth <= 0 || chance(25)) {
      size_t NumSyms = E.F64s.size();
      uint64_t Pick = R.nextBelow(2 + NumSyms);
      if (Pick < NumSyms)
        return E.F64s[Pick];
      return constF64Tame();
    }
    switch (R.nextBelow(8)) {
    case 0:
    case 1: {
      static const BinOpKind Ops[] = {BinOpKind::Add, BinOpKind::Sub,
                                      BinOpKind::Mul, BinOpKind::Min,
                                      BinOpKind::Max};
      return binop(Ops[R.nextBelow(5)], genF64(E, Depth - 1, AllowLoops),
                   genF64(E, Depth - 1, AllowLoops));
    }
    case 2: // float division: /0 gives inf/NaN deterministically, no trap
      return binop(BinOpKind::Div, genF64(E, Depth - 1, AllowLoops),
                   genF64(E, Depth - 1, AllowLoops));
    case 3: {
      std::vector<ExprRef> As = arraysOf(E, Type::f64());
      if (!As.empty())
        return safeRead(E, As[R.nextBelow(As.size())], Depth);
      return genF64(E, Depth - 1, AllowLoops);
    }
    case 4: {
      switch (R.nextBelow(4)) {
      case 0: // exp of a capped operand so sums stay finite
        return unop(UnOpKind::Exp,
                    binop(BinOpKind::Min, genF64(E, Depth - 1, AllowLoops),
                          constF64(20.0)));
      case 1:
        return unop(UnOpKind::Sqrt,
                    unop(UnOpKind::Abs, genF64(E, Depth - 1, AllowLoops)));
      case 2:
        return unop(UnOpKind::Neg, genF64(E, Depth - 1, AllowLoops));
      default:
        return unop(UnOpKind::Abs, genF64(E, Depth - 1, AllowLoops));
      }
    }
    case 5:
      return select(genBool(E, Depth - 1), genF64(E, Depth - 1, AllowLoops),
                    genF64(E, Depth - 1, AllowLoops));
    case 6:
      return castTo(Type::f64(), genI64(E, Depth - 1, AllowLoops));
    default:
      if (AllowLoops && E.LoopDepth < O.MaxLoopDepth)
        return genReduceLoop(E, Type::f64());
      return genF64(E, Depth - 1, AllowLoops);
    }
  }

  /// Conditions and keys: i64 comparisons may contain subloops (integer
  /// results are exact), float comparisons stay loop-free.
  ExprRef genBool(const Env &E, int Depth) {
    if (Depth <= 0 || chance(20))
      return constBool(chance(70));
    switch (R.nextBelow(5)) {
    case 0: {
      static const BinOpKind Cmp[] = {BinOpKind::Eq, BinOpKind::Ne,
                                      BinOpKind::Lt, BinOpKind::Le,
                                      BinOpKind::Gt, BinOpKind::Ge};
      return binop(Cmp[R.nextBelow(6)], genI64(E, Depth - 1, false),
                   genI64(E, Depth - 1, false));
    }
    case 1: {
      static const BinOpKind Cmp[] = {BinOpKind::Lt, BinOpKind::Le,
                                      BinOpKind::Gt, BinOpKind::Ge};
      return binop(Cmp[R.nextBelow(4)], genF64(E, Depth - 1, false),
                   genF64(E, Depth - 1, false));
    }
    case 2:
      return binop(chance(50) ? BinOpKind::And : BinOpKind::Or,
                   genBool(E, Depth - 1), genBool(E, Depth - 1));
    case 3:
      return unop(UnOpKind::Not, genBool(E, Depth - 1));
    default:
      return binop(BinOpKind::Eq,
                   binop(BinOpKind::Mod,
                         unop(UnOpKind::Abs, genI64(E, Depth - 1, false)),
                         constI64(irange(2, 5))),
                   constI64(0));
    }
  }

  //===--------------------------------------------------------------------===//
  // Multiloops.
  //===--------------------------------------------------------------------===//

  /// Loop size: a small constant (0 and 1 included), len(array), or a
  /// clamped combination. Records the array whose length the size is, so
  /// the body can read it at the loop index without a guard.
  ExprRef genSize(const Env &E, ExprRef *AlignedArr) {
    *AlignedArr = nullptr;
    if (!E.Arrays.empty() && chance(55)) {
      ExprRef A = E.Arrays[R.nextBelow(E.Arrays.size())];
      *AlignedArr = A;
      return arrayLen(A);
    }
    if (chance(15))
      return constI64(R.nextBelow(2)); // 0 or 1
    return constI64(irange(2, O.MaxConstSize));
  }

  /// A scalar Reduce loop of result type \p Ty (used inside expressions).
  ExprRef genReduceLoop(const Env &E, const TypeRef &Ty) {
    ExprRef AlignedArr;
    ExprRef Size = genSize(E, &AlignedArr);
    Generator G;
    G.Kind = GenKind::Reduce;
    SymRef I = freshSym("i", Type::i64());
    Env Body = E;
    ++Body.LoopDepth;
    Body.I64s.push_back(I);
    Body.Aligned.clear();
    if (AlignedArr)
      Body.Aligned.emplace_back(AlignedArr, I);
    if (chance(40)) {
      SymRef C = freshSym("c", Type::i64());
      Env CondEnv = E;
      ++CondEnv.LoopDepth;
      CondEnv.I64s.push_back(C);
      CondEnv.Aligned.clear();
      if (AlignedArr)
        CondEnv.Aligned.emplace_back(AlignedArr, C);
      ExprRef CondBody = genBool(CondEnv, 2);
      G.Cond = Func({C}, std::move(CondBody));
    }
    G.Value = Func({I}, Ty->isFloat() ? clampF64(genF64(Body, 2, true))
                                      : genI64(Body, 2, true));
    G.Reduce = genReduceFunc(Ty);
    return singleLoop(Size, std::move(G));
  }

  /// Bounds a float reduce value to [-1e6, 1e6] (and squashes NaN, which
  /// fmax drops). Reassociating a parallel sum of bounded terms keeps the
  /// absolute error far below the oracle tolerance; unbounded terms that
  /// cancel would not. Non-reduce float values stay unclamped — their
  /// evaluation order is fixed, so inf/NaN are compared exactly.
  ExprRef clampF64(ExprRef V) {
    return binop(BinOpKind::Min,
                 binop(BinOpKind::Max, std::move(V), constF64(-1.0e6)),
                 constF64(1.0e6));
  }

  /// Associative reduction operator over \p Ty. Float multiply is excluded
  /// (overflow at the DBL_MAX boundary is association-dependent); integer
  /// multiply is excluded (wrapping is UB in the executors' native code).
  Func genReduceFunc(const TypeRef &Ty) {
    if (Ty->isBool())
      return binFunc("r", Ty, [&](const ExprRef &A, const ExprRef &B) {
        return binop(chance(50) ? BinOpKind::And : BinOpKind::Or, A, B);
      });
    if (Ty->isStruct()) {
      // Argmin-style: keep the operand with the smaller first field; ties
      // keep the left (earlier) operand, which ordered merges preserve.
      return binFunc("r", Ty, [&](const ExprRef &A, const ExprRef &B) {
        const std::string &F0 = Ty->fields()[0].Name;
        return select(binop(BinOpKind::Le, getField(A, F0), getField(B, F0)),
                      A, B);
      });
    }
    switch (R.nextBelow(4)) {
    case 0:
      return binFunc("r", Ty, [&](const ExprRef &A, const ExprRef &B) {
        return binop(BinOpKind::Add, A, B);
      });
    case 1:
      return binFunc("r", Ty, [&](const ExprRef &A, const ExprRef &B) {
        return binop(BinOpKind::Min, A, B);
      });
    case 2:
      return binFunc("r", Ty, [&](const ExprRef &A, const ExprRef &B) {
        return binop(BinOpKind::Max, A, B);
      });
    default: // min/max spelled as a select (non-trivial reduce body)
      return binFunc("r", Ty, [&](const ExprRef &A, const ExprRef &B) {
        if (chance(50))
          return select(binop(BinOpKind::Le, A, B), A, B);
        return select(binop(BinOpKind::Lt, A, B), B, A);
      });
    }
  }

  /// One full generator (any of the four kinds) for a loop over \p Size.
  Generator genGenerator(const Env &Outer, const ExprRef &AlignedArr,
                         bool AllowNested) {
    Generator G;
    uint64_t K = R.nextBelow(100);
    G.Kind = K < 35   ? GenKind::Collect
             : K < 65 ? GenKind::Reduce
             : K < 82 ? GenKind::BucketCollect
                      : GenKind::BucketReduce;

    SymRef I = freshSym("i", Type::i64());
    Env Body = Outer;
    ++Body.LoopDepth;
    Body.I64s.push_back(I);
    Body.Aligned.clear();
    if (AlignedArr)
      Body.Aligned.emplace_back(AlignedArr, I);

    // Value type: scalars mostly; structs and nested collects too.
    TypeRef VTy;
    uint64_t T = R.nextBelow(100);
    bool Nested = AllowNested && Body.LoopDepth < O.MaxLoopDepth;
    if (T < 40)
      VTy = Type::i64();
    else if (T < 75)
      VTy = Type::f64();
    else if (T < 85 && !G.isReduce())
      VTy = Type::boolTy();
    else if (T < 93)
      VTy = Type::structOf({{"x", Type::i64()}, {"y", Type::f64()}});
    else if (Nested && G.Kind == GenKind::Collect)
      VTy = nullptr; // nested loop value; type comes from the inner loop
    else
      VTy = Type::i64();

    if (!VTy) {
      ExprRef InnerAligned;
      Env Inner = Body;
      ExprRef InnerSize = genSize(Inner, &InnerAligned);
      Generator IG = genGenerator(Inner, InnerAligned, false);
      G.Value = Func({I}, singleLoop(InnerSize, std::move(IG)));
    } else if (VTy->isStruct()) {
      std::vector<Type::Field> Fields = VTy->fields();
      G.Value = Func({I}, makeStruct(Fields, {genI64(Body, 2, Nested),
                                              genF64(Body, 2, Nested)}));
    } else if (VTy->isFloat()) {
      ExprRef V = genF64(Body, 3, Nested);
      G.Value = Func({I}, G.isReduce() ? clampF64(std::move(V))
                                       : std::move(V));
    } else if (VTy->isBool()) {
      G.Value = Func({I}, genBool(Body, 2));
    } else {
      G.Value = Func({I}, genI64(Body, 3, Nested));
    }

    if (chance(50)) {
      SymRef C = freshSym("c", Type::i64());
      Env CondEnv = Outer;
      ++CondEnv.LoopDepth;
      CondEnv.I64s.push_back(C);
      CondEnv.Aligned.clear();
      if (AlignedArr)
        CondEnv.Aligned.emplace_back(AlignedArr, C);
      G.Cond = Func({C}, genBool(CondEnv, 2));
    }

    if (G.isBucket()) {
      SymRef KSym = freshSym("k", Type::i64());
      Env KeyEnv = Outer;
      ++KeyEnv.LoopDepth;
      KeyEnv.I64s.push_back(KSym);
      KeyEnv.Aligned.clear();
      if (AlignedArr)
        KeyEnv.Aligned.emplace_back(AlignedArr, KSym);
      bool Dense = chance(50);
      if (Dense) {
        int64_t NK = irange(1, 6);
        G.NumKeys = constI64(NK);
        if (Adversarial && !AdvPlaced && chance(30)) {
          // Unchecked dense key: traps once the range outgrows NumKeys.
          AdvPlaced = true;
          G.Key = Func({KSym}, ExprRef(KSym));
        } else {
          G.Key = Func({KSym},
                       binop(BinOpKind::Mod,
                             unop(UnOpKind::Abs, genI64(KeyEnv, 2, false)),
                             constI64(NK)));
        }
      } else {
        // Hash buckets: any i64 key, negative values included.
        G.Key = Func({KSym}, genI64(KeyEnv, 2, false));
      }
    }

    if (G.isReduce())
      G.Reduce = genReduceFunc(G.Value.Body->type());
    return G;
  }

  /// A root expression: one multiloop (sometimes multi-generator), its
  /// output optionally post-processed (LoopOut picks, field reads, flatten).
  ExprRef genRoot(Env &E) {
    ExprRef AlignedArr;
    ExprRef Size = genSize(E, &AlignedArr);
    std::vector<Generator> Gens;
    Gens.push_back(genGenerator(E, AlignedArr, true));
    if (chance(20))
      Gens.push_back(genGenerator(E, AlignedArr, false));
    ExprRef Loop = multiloop(Size, std::move(Gens));
    const auto *ML = cast<MultiloopExpr>(Loop);
    ExprRef Out = ML->isSingle() ? Loop
                                 : loopOut(Loop, static_cast<unsigned>(
                                                     R.nextBelow(ML->numGens())));
    // Post-processing keeps the surrounding program non-trivial.
    if (Out->type()->isStruct() && chance(40)) {
      const auto &Fields = Out->type()->fields();
      Out = getField(Out, Fields[R.nextBelow(Fields.size())].Name);
    }
    if (Out->type()->isArray() && Out->type()->elem()->isArray() &&
        chance(50))
      Out = flatten(Out);
    if (Out->type()->isArray() && Out->type()->elem()->isScalar() &&
        !Out->type()->elem()->isBool() && chance(25)) {
      // Fold the array away with a scalar summary read or length.
      if (chance(50))
        return arrayLen(Out);
      Env E2 = E;
      E2.Arrays.push_back(Out);
      return safeRead(E2, Out, 2);
    }
    return Out;
  }
};

} // namespace

FuzzCase dmll::fuzz::generateCase(uint64_t Seed, const GenOptions &O) {
  Gen G(Seed, O);
  FuzzCase C = G.run(Seed);
  std::vector<std::string> Errs = verify(C.P);
  if (!Errs.empty())
    fatalError("fuzz generator produced an ill-formed program (seed " +
               std::to_string(Seed) + "): " + Errs[0]);
  return C;
}
