//===- fuzz/RefEval.cpp ----------------------------------------*- C++ -*-===//

#include "fuzz/RefEval.h"

#include "ir/Traversal.h"
#include "support/Error.h"

#include <cmath>
#include <limits>
#include <map>

using namespace dmll;
using namespace dmll::fuzz;

bool dmll::fuzz::refExpressible(const Program &P) {
  bool Ok = true;
  visitAll(P.Result, [&Ok](const ExprRef &E) {
    if (const auto *ML = dyn_cast<MultiloopExpr>(E))
      if (!ML->isSingle())
        Ok = false;
    if (isa<LoopOutExpr>(E))
      Ok = false;
  });
  return Ok;
}

namespace {

/// Flat symbol environment: id -> value, copied per binding. Deliberately
/// naive (std::map, no sharing, no memo) so the machinery has nothing in
/// common with the interpreter's scope chain.
using RefEnv = std::map<uint64_t, Value>;

class RefEvaluator {
public:
  explicit RefEvaluator(const InputMap &Inputs) : Inputs(Inputs) {}

  Value eval(const ExprRef &E, const RefEnv &Env) {
    switch (E->kind()) {
    case ExprKind::ConstInt:
      return Value(cast<ConstIntExpr>(E)->value());
    case ExprKind::ConstFloat:
      return Value(cast<ConstFloatExpr>(E)->value());
    case ExprKind::ConstBool:
      return Value(cast<ConstBoolExpr>(E)->value());
    case ExprKind::Sym: {
      const auto *Sym = cast<SymExpr>(E);
      auto It = Env.find(Sym->id());
      if (It == Env.end())
        trap("unbound symbol " + Sym->name() + std::to_string(Sym->id()));
      return It->second;
    }
    case ExprKind::Input: {
      const auto *In = cast<InputExpr>(E);
      auto It = Inputs.find(In->name());
      if (It == Inputs.end())
        trap("no binding for input '" + In->name() + "'");
      return It->second;
    }
    case ExprKind::BinOp:
      return binOp(cast<BinOpExpr>(E), Env);
    case ExprKind::UnOp:
      return unOp(cast<UnOpExpr>(E), Env);
    case ExprKind::Select: {
      const auto *Sel = cast<SelectExpr>(E);
      return eval(Sel->cond(), Env).asBool() ? eval(Sel->trueVal(), Env)
                                             : eval(Sel->falseVal(), Env);
    }
    case ExprKind::Cast: {
      Value A = eval(cast<CastExpr>(E)->operand(), Env);
      if (E->type()->isFloat())
        return Value(A.toDouble());
      if (E->type()->isInt())
        return Value(A.toInt());
      return Value(A.toDouble() != 0.0);
    }
    case ExprKind::ArrayRead: {
      const auto *R = cast<ArrayReadExpr>(E);
      Value Arr = eval(R->array(), Env);
      int64_t Idx = eval(R->index(), Env).toInt();
      if (Idx < 0 || static_cast<size_t>(Idx) >= Arr.arraySize())
        trap("array read out of range: index " + std::to_string(Idx) +
             ", size " + std::to_string(Arr.arraySize()));
      return Arr.at(static_cast<size_t>(Idx));
    }
    case ExprKind::ArrayLen:
      return Value(static_cast<int64_t>(
          eval(cast<ArrayLenExpr>(E)->array(), Env).arraySize()));
    case ExprKind::Flatten: {
      Value Arr = eval(cast<FlattenExpr>(E)->array(), Env);
      ArrayData Out;
      for (const Value &Inner : *Arr.array())
        Out.insert(Out.end(), Inner.array()->begin(), Inner.array()->end());
      return Value::makeArray(std::move(Out));
    }
    case ExprKind::MakeStruct: {
      std::vector<Value> Fields;
      for (const ExprRef &Op : E->ops())
        Fields.push_back(eval(Op, Env));
      return Value::makeStruct(std::move(Fields));
    }
    case ExprKind::GetField: {
      const auto *G = cast<GetFieldExpr>(E);
      Value Base = eval(G->base(), Env);
      int Idx = G->base()->type()->fieldIndex(G->field());
      return Base.strct()->Fields[static_cast<size_t>(Idx)];
    }
    case ExprKind::Multiloop:
      return loop(cast<MultiloopExpr>(E), Env);
    case ExprKind::LoopOut:
      fatalError("refEval: multi-generator loops are not expressible");
    }
    fatalError("refEval: unknown expression kind");
  }

private:
  const InputMap &Inputs;

  Value apply1(const Func &F, const Value &A, const RefEnv &Env) {
    RefEnv Child = Env;
    Child[F.Params[0]->id()] = A;
    return eval(F.Body, Child);
  }

  Value apply2(const Func &F, const Value &A, const Value &B,
               const RefEnv &Env) {
    RefEnv Child = Env;
    Child[F.Params[0]->id()] = A;
    Child[F.Params[1]->id()] = B;
    return eval(F.Body, Child);
  }

  Value loop(const MultiloopExpr *ML, const RefEnv &Env) {
    int64_t N = eval(ML->size(), Env).toInt();
    if (N < 0)
      trap("negative multiloop size " + std::to_string(N));
    const Generator &G = ML->gen();

    // Accumulators; which ones are live depends on the generator kind.
    ArrayData Collected;
    Value Acc;
    bool HasAcc = false;
    int64_t NumKeys = 0;
    std::vector<ArrayData> DenseColl;
    std::vector<Value> DenseVals;
    std::vector<char> DenseHas;
    std::vector<int64_t> HashKeys; // first-occurrence order, linear scan
    std::vector<ArrayData> HashColl;
    std::vector<Value> HashVals;

    if (G.isDenseBucket()) {
      NumKeys = eval(G.NumKeys, Env).toInt();
      if (NumKeys < 0)
        trap("negative dense bucket count");
      DenseColl.resize(static_cast<size_t>(NumKeys));
      DenseVals.resize(static_cast<size_t>(NumKeys));
      DenseHas.assign(static_cast<size_t>(NumKeys), 0);
    }

    for (int64_t I = 0; I < N; ++I) {
      if (G.Cond.isSet() && !apply1(G.Cond, Value(I), Env).asBool())
        continue;
      Value V = apply1(G.Value, Value(I), Env);
      switch (G.Kind) {
      case GenKind::Collect:
        Collected.push_back(std::move(V));
        break;
      case GenKind::Reduce:
        if (!HasAcc) {
          Acc = std::move(V);
          HasAcc = true;
        } else {
          Acc = apply2(G.Reduce, Acc, V, Env);
        }
        break;
      case GenKind::BucketCollect:
      case GenKind::BucketReduce: {
        int64_t Key = apply1(G.Key, Value(I), Env).toInt();
        if (G.NumKeys) {
          if (Key < 0 || Key >= NumKeys)
            trap("dense bucket key " + std::to_string(Key) + " out of range [0," +
                 std::to_string(NumKeys) + ")");
          size_t K = static_cast<size_t>(Key);
          if (G.Kind == GenKind::BucketCollect) {
            DenseColl[K].push_back(std::move(V));
          } else if (!DenseHas[K]) {
            DenseVals[K] = std::move(V);
            DenseHas[K] = 1;
          } else {
            DenseVals[K] = apply2(G.Reduce, DenseVals[K], V, Env);
          }
          break;
        }
        size_t K = HashKeys.size();
        for (size_t J = 0; J < HashKeys.size(); ++J)
          if (HashKeys[J] == Key) {
            K = J;
            break;
          }
        bool First = K == HashKeys.size();
        if (First) {
          HashKeys.push_back(Key);
          if (G.Kind == GenKind::BucketCollect)
            HashColl.emplace_back();
          else
            HashVals.emplace_back();
        }
        if (G.Kind == GenKind::BucketCollect)
          HashColl[K].push_back(std::move(V));
        else if (First)
          HashVals[K] = std::move(V);
        else
          HashVals[K] = apply2(G.Reduce, HashVals[K], V, Env);
        break;
      }
      }
    }

    switch (G.Kind) {
    case GenKind::Collect:
      return Value::makeArray(std::move(Collected));
    case GenKind::Reduce:
      return HasAcc ? std::move(Acc) : Value::zeroOf(*G.Value.Body->type());
    case GenKind::BucketCollect: {
      if (G.NumKeys) {
        ArrayData Buckets;
        for (ArrayData &B : DenseColl)
          Buckets.push_back(Value::makeArray(std::move(B)));
        return Value::makeArray(std::move(Buckets));
      }
      ArrayData Keys, Buckets;
      for (int64_t K : HashKeys)
        Keys.push_back(Value(K));
      for (ArrayData &B : HashColl)
        Buckets.push_back(Value::makeArray(std::move(B)));
      return Value::makeStruct({Value::makeArray(std::move(Keys)),
                                Value::makeArray(std::move(Buckets))});
    }
    case GenKind::BucketReduce: {
      if (G.NumKeys) {
        ArrayData Out;
        for (size_t K = 0; K < DenseVals.size(); ++K)
          Out.push_back(DenseHas[K] ? std::move(DenseVals[K])
                                    : Value::zeroOf(*G.Value.Body->type()));
        return Value::makeArray(std::move(Out));
      }
      ArrayData Keys;
      for (int64_t K : HashKeys)
        Keys.push_back(Value(K));
      return Value::makeStruct({Value::makeArray(std::move(Keys)),
                                Value::makeArray(std::move(HashVals))});
    }
    }
    fatalError("refEval: unknown generator kind");
  }

  Value binOp(const BinOpExpr *B, const RefEnv &Env) {
    Value L = eval(B->lhs(), Env);
    Value R = eval(B->rhs(), Env);
    switch (B->op()) {
    case BinOpKind::And:
      return Value(L.asBool() && R.asBool());
    case BinOpKind::Or:
      return Value(L.asBool() || R.asBool());
    case BinOpKind::Eq:
    case BinOpKind::Ne:
    case BinOpKind::Lt:
    case BinOpKind::Le:
    case BinOpKind::Gt:
    case BinOpKind::Ge:
      if (L.isFloat() || R.isFloat())
        return Value(cmp(B->op(), L.toDouble(), R.toDouble()));
      return Value(cmp(B->op(), L.toInt(), R.toInt()));
    default:
      break;
    }
    if (B->type()->isFloat()) {
      double A = L.toDouble(), C = R.toDouble();
      switch (B->op()) {
      case BinOpKind::Add:
        return Value(A + C);
      case BinOpKind::Sub:
        return Value(A - C);
      case BinOpKind::Mul:
        return Value(A * C);
      case BinOpKind::Div:
        return Value(A / C);
      case BinOpKind::Mod:
        return Value(std::fmod(A, C));
      case BinOpKind::Min:
        return Value(std::fmin(A, C));
      case BinOpKind::Max:
        return Value(std::fmax(A, C));
      default:
        fatalError("refEval: bad float binop");
      }
    }
    int64_t A = L.toInt(), C = R.toInt();
    switch (B->op()) {
    case BinOpKind::Add:
      return Value(A + C);
    case BinOpKind::Sub:
      return Value(A - C);
    case BinOpKind::Mul:
      return Value(A * C);
    case BinOpKind::Div:
      if (C == 0 || (C == -1 && A == std::numeric_limits<int64_t>::min()))
        trap("integer division by zero");
      return Value(A / C);
    case BinOpKind::Mod:
      if (C == 0 || (C == -1 && A == std::numeric_limits<int64_t>::min()))
        trap("integer modulo by zero");
      return Value(A % C);
    case BinOpKind::Min:
      return Value(A < C ? A : C);
    case BinOpKind::Max:
      return Value(A > C ? A : C);
    default:
      fatalError("refEval: bad int binop");
    }
  }

  template <typename T> static bool cmp(BinOpKind Op, T A, T B) {
    switch (Op) {
    case BinOpKind::Eq:
      return A == B;
    case BinOpKind::Ne:
      return A != B;
    case BinOpKind::Lt:
      return A < B;
    case BinOpKind::Le:
      return A <= B;
    case BinOpKind::Gt:
      return A > B;
    default:
      return A >= B;
    }
  }

  Value unOp(const UnOpExpr *U, const RefEnv &Env) {
    Value A = eval(U->operand(), Env);
    switch (U->op()) {
    case UnOpKind::Not:
      return Value(!A.asBool());
    case UnOpKind::Neg:
      return U->type()->isFloat() ? Value(-A.toDouble())
                                  : Value(-A.toInt());
    case UnOpKind::Abs:
      if (U->type()->isFloat())
        return Value(std::fabs(A.toDouble()));
      return Value(A.toInt() < 0 ? -A.toInt() : A.toInt());
    case UnOpKind::Exp:
      return Value(std::exp(A.toDouble()));
    case UnOpKind::Log:
      return Value(std::log(A.toDouble()));
    case UnOpKind::Sqrt:
      return Value(std::sqrt(A.toDouble()));
    }
    fatalError("refEval: bad unop");
  }
};

} // namespace

Value dmll::fuzz::refEval(const Program &P, const InputMap &Inputs) {
  RefEvaluator E(Inputs);
  return E.eval(P.Result, RefEnv());
}
