//===- fuzz/Gen.h - Random well-typed DMLL program generator --*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded generation of random well-typed DMLL programs plus matching input
/// data, in the spirit of structured IR fuzzing (grammar-directed, always
/// verifier-clean). Programs exercise all four generator kinds, nested
/// multiloops, non-trivial conditions and keys, struct and array values,
/// DAG sharing, and — at a controlled rate — adversarial sites (unguarded
/// division, INT64_MIN literals, out-of-range dense keys, 0-length ranges)
/// whose traps the differential oracle cross-checks between executors.
/// Generation is fully deterministic: the same seed always produces the
/// same program (up to symbol ids, i.e. alpha-equivalence) and input data.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_FUZZ_GEN_H
#define DMLL_FUZZ_GEN_H

#include "interp/Interp.h"
#include "ir/Expr.h"

#include <cstdint>

namespace dmll {
namespace fuzz {

/// Generation knobs. Defaults keep programs small enough that a full
/// differential run (six executor configurations) takes milliseconds.
struct GenOptions {
  int MaxLoopDepth = 2;       ///< maximum multiloop nesting
  int64_t MaxConstSize = 24;  ///< cap for constant loop sizes
  int64_t MaxInputLen = 32;   ///< cap for generated input array lengths
  /// Per-program probability (percent) of injecting one adversarial site
  /// (unguarded division, INT64_MIN constant, unchecked dense key).
  int AdversarialPct = 15;
};

/// One generated test case: a verifier-clean program plus bound inputs.
struct FuzzCase {
  uint64_t Seed = 0;
  Program P;
  InputMap Inputs;
};

/// Generates the case for \p Seed. Deterministic; aborts only on internal
/// generator bugs (the produced program always passes verify()).
FuzzCase generateCase(uint64_t Seed, const GenOptions &O = GenOptions());

} // namespace fuzz
} // namespace dmll

#endif // DMLL_FUZZ_GEN_H
