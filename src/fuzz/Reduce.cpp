//===- fuzz/Reduce.cpp -----------------------------------------*- C++ -*-===//

#include "fuzz/Reduce.h"

#include "fuzz/Oracle.h"
#include "ir/Builder.h"
#include "ir/Traversal.h"
#include "ir/Verifier.h"

using namespace dmll;
using namespace dmll::fuzz;

FailPred dmll::fuzz::oracleFails(double Tol, int TimeoutSec) {
  return [Tol, TimeoutSec](const FuzzCase &C) {
    return !runDifferential(C, Tol, TimeoutSec).ok();
  };
}

namespace {

/// Replaces the node \p Target (by identity, wherever it is shared) with
/// \p Repl. Sound for the candidates below: replacements are either
/// constants or subexpressions of the target, so no symbol can escape its
/// binder.
ExprRef replaceNode(const ExprRef &Root, const Expr *Target,
                    const ExprRef &Repl) {
  return transformBottomUp(Root, [Target, &Repl](const ExprRef &E) {
    return E.get() == Target ? Repl : E;
  });
}

/// Type-preserving shrink candidates for one node, smallest first.
std::vector<ExprRef> candidatesFor(const ExprRef &E) {
  std::vector<ExprRef> Out;
  const TypeRef &Ty = E->type();

  // Constant-fold the whole subtree. Zero and one both matter: zero kills
  // loops and exposes empty-range bugs, one keeps divisors/sizes alive.
  if (Ty->isInt() && !isa<ConstIntExpr>(E)) {
    Out.push_back(constI64(0));
    Out.push_back(constI64(1));
  } else if (Ty->isFloat() && !isa<ConstFloatExpr>(E)) {
    Out.push_back(constF64(0.0));
    Out.push_back(constF64(1.0));
  } else if (Ty->isBool() && !isa<ConstBoolExpr>(E)) {
    Out.push_back(constBool(true));
    Out.push_back(constBool(false));
  }

  switch (E->kind()) {
  case ExprKind::BinOp: {
    const auto *B = cast<BinOpExpr>(E);
    if (sameType(B->lhs()->type(), Ty))
      Out.push_back(B->lhs());
    if (sameType(B->rhs()->type(), Ty))
      Out.push_back(B->rhs());
    break;
  }
  case ExprKind::UnOp:
    if (sameType(cast<UnOpExpr>(E)->operand()->type(), Ty))
      Out.push_back(cast<UnOpExpr>(E)->operand());
    break;
  case ExprKind::Cast:
    if (sameType(cast<CastExpr>(E)->operand()->type(), Ty))
      Out.push_back(cast<CastExpr>(E)->operand());
    break;
  case ExprKind::Select:
    Out.push_back(cast<SelectExpr>(E)->trueVal());
    Out.push_back(cast<SelectExpr>(E)->falseVal());
    break;
  case ExprKind::LoopOut: {
    // Drop every other generator: LoopOut(L, i) becomes the single-
    // generator loop of gens[i].
    const auto *LO = cast<LoopOutExpr>(E);
    if (const auto *ML = dyn_cast<MultiloopExpr>(LO->loop()))
      if (!ML->isSingle())
        Out.push_back(singleLoop(ML->size(), ML->gen(LO->index())));
    break;
  }
  case ExprKind::Multiloop: {
    // Drop generator conditions (a structural candidate the constant
    // rules cannot express because Cond lives under a binder).
    const auto *ML = cast<MultiloopExpr>(E);
    bool AnyCond = false;
    std::vector<Generator> Gens = ML->gens();
    for (Generator &G : Gens)
      if (G.Cond.isSet()) {
        G.Cond = Func();
        AnyCond = true;
      }
    if (AnyCond)
      Out.push_back(multiloop(ML->size(), std::move(Gens)));
    break;
  }
  default:
    break;
  }
  return Out;
}

} // namespace

FuzzCase dmll::fuzz::reduceCase(const FuzzCase &C, const FailPred &Pred,
                                ReduceStats *Stats) {
  FuzzCase Cur = C;
  ReduceStats Local;
  Local.NodesBefore = countNodes(Cur.P.Result);
  size_t CurSize = Local.NodesBefore;

  bool Progress = true;
  while (Progress) {
    Progress = false;
    ++Local.Rounds;
    // Deterministic node order: post-order over the current program.
    std::vector<ExprRef> Nodes;
    visitAll(Cur.P.Result, [&Nodes](const ExprRef &E) {
      Nodes.push_back(E);
    });
    for (const ExprRef &Node : Nodes) {
      for (const ExprRef &Repl : candidatesFor(Node)) {
        ++Local.Tried;
        FuzzCase Cand = Cur;
        Cand.P.Result = replaceNode(Cur.P.Result, Node.get(), Repl);
        if (Cand.P.Result.get() == Cur.P.Result.get())
          continue; // target no longer present (stale after earlier accept)
        size_t CandSize = countNodes(Cand.P.Result);
        if (CandSize >= CurSize)
          continue; // "never larger" is a hard guarantee
        if (!verify(Cand.P).empty())
          continue;
        if (!Pred(Cand))
          continue;
        Cur = std::move(Cand);
        CurSize = CandSize;
        ++Local.Accepted;
        Progress = true;
        break; // restart the walk on the smaller program
      }
      if (Progress)
        break;
    }
  }

  Local.NodesAfter = CurSize;
  if (Stats)
    *Stats = Local;
  return Cur;
}
