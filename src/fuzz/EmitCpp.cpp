//===- fuzz/EmitCpp.cpp ----------------------------------------*- C++ -*-===//

#include "fuzz/EmitCpp.h"

#include "ir/Printer.h"
#include "support/Error.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <unordered_map>

using namespace dmll;
using namespace dmll::fuzz;

namespace {

std::string i64Lit(int64_t V) {
  // INT64_MIN cannot be written as a literal (the '-' applies to an
  // out-of-range positive); spell both extremes via <limits>.
  if (V == INT64_MIN)
    return "std::numeric_limits<int64_t>::min()";
  if (V == INT64_MAX)
    return "std::numeric_limits<int64_t>::max()";
  return std::to_string(V);
}

std::string f64Lit(double V) {
  if (std::isnan(V))
    return "std::numeric_limits<double>::quiet_NaN()";
  if (std::isinf(V))
    return V > 0 ? "std::numeric_limits<double>::infinity()"
                 : "-std::numeric_limits<double>::infinity()";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V); // round-trips every double
  std::string S(Buf);
  // Ensure a double-typed literal (printers drop ".0" for integral values).
  if (S.find_first_of(".eEni") == std::string::npos)
    S += ".0";
  return S;
}

std::string quote(const std::string &S) { return "\"" + S + "\""; }

std::string typeCpp(const TypeRef &Ty) {
  switch (Ty->getKind()) {
  case TypeKind::Bool:
    return "Type::boolTy()";
  case TypeKind::Int32:
    return "Type::i32()";
  case TypeKind::Int64:
    return "Type::i64()";
  case TypeKind::Float32:
    return "Type::f32()";
  case TypeKind::Float64:
    return "Type::f64()";
  case TypeKind::Array:
    return "Type::arrayOf(" + typeCpp(Ty->elem()) + ")";
  case TypeKind::Struct: {
    std::string S = "Type::structOf({";
    bool First = true;
    for (const Type::Field &F : Ty->fields()) {
      if (!First)
        S += ", ";
      First = false;
      S += "{" + quote(F.Name) + ", " + typeCpp(F.Ty) + "}";
    }
    return S + "})";
  }
  }
  return "?";
}

std::string valueCpp(const Value &V) {
  if (V.isBool())
    return std::string("Value(") + (V.asBool() ? "true" : "false") + ")";
  if (V.isInt())
    return "Value(int64_t(" + i64Lit(V.asInt()) + "))";
  if (V.isFloat())
    return "Value(" + f64Lit(V.asFloat()) + ")";
  std::string S;
  if (V.isArray()) {
    S = "Value::makeArray({";
    for (size_t I = 0; I < V.arraySize(); ++I)
      S += (I ? ", " : "") + valueCpp(V.at(I));
    return S + "})";
  }
  S = "Value::makeStruct({";
  const auto &Fields = V.strct()->Fields;
  for (size_t I = 0; I < Fields.size(); ++I)
    S += (I ? ", " : "") + valueCpp(Fields[I]);
  return S + "})";
}

const char *hintCpp(LayoutHint H) {
  switch (H) {
  case LayoutHint::Default:
    return "LayoutHint::Default";
  case LayoutHint::Local:
    return "LayoutHint::Local";
  case LayoutHint::Partitioned:
    return "LayoutHint::Partitioned";
  }
  return "?";
}

const char *binOpCpp(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::Add: return "BinOpKind::Add";
  case BinOpKind::Sub: return "BinOpKind::Sub";
  case BinOpKind::Mul: return "BinOpKind::Mul";
  case BinOpKind::Div: return "BinOpKind::Div";
  case BinOpKind::Mod: return "BinOpKind::Mod";
  case BinOpKind::Min: return "BinOpKind::Min";
  case BinOpKind::Max: return "BinOpKind::Max";
  case BinOpKind::Eq:  return "BinOpKind::Eq";
  case BinOpKind::Ne:  return "BinOpKind::Ne";
  case BinOpKind::Lt:  return "BinOpKind::Lt";
  case BinOpKind::Le:  return "BinOpKind::Le";
  case BinOpKind::Gt:  return "BinOpKind::Gt";
  case BinOpKind::Ge:  return "BinOpKind::Ge";
  case BinOpKind::And: return "BinOpKind::And";
  case BinOpKind::Or:  return "BinOpKind::Or";
  }
  return "?";
}

const char *unOpCpp(UnOpKind Op) {
  switch (Op) {
  case UnOpKind::Neg:  return "UnOpKind::Neg";
  case UnOpKind::Not:  return "UnOpKind::Not";
  case UnOpKind::Exp:  return "UnOpKind::Exp";
  case UnOpKind::Log:  return "UnOpKind::Log";
  case UnOpKind::Sqrt: return "UnOpKind::Sqrt";
  case UnOpKind::Abs:  return "UnOpKind::Abs";
  }
  return "?";
}

const char *genKindCpp(GenKind K) {
  switch (K) {
  case GenKind::Collect:       return "GenKind::Collect";
  case GenKind::Reduce:        return "GenKind::Reduce";
  case GenKind::BucketCollect: return "GenKind::BucketCollect";
  case GenKind::BucketReduce:  return "GenKind::BucketReduce";
  }
  return "?";
}

/// Emits each distinct node once (post-order), as a local variable.
class Emitter {
public:
  explicit Emitter(std::ostringstream &Body) : Body(Body) {}

  std::string emit(const ExprRef &E) {
    auto It = Names.find(E.get());
    if (It != Names.end())
      return It->second;
    std::string Name = build(E);
    Names.emplace(E.get(), Name);
    return Name;
  }

  std::string emitFunc(const Func &F) {
    if (!F.isSet())
      return "Func()";
    std::string Params = "{";
    for (size_t I = 0; I < F.Params.size(); ++I)
      Params += (I ? ", " : "") + emitSym(F.Params[I]);
    Params += "}";
    std::string Body = emit(F.Body);
    return "Func(" + Params + ", " + Body + ")";
  }

private:
  std::ostringstream &Body;
  std::unordered_map<const Expr *, std::string> Names;
  int Next = 0;

  std::string fresh(const char *Prefix) {
    return Prefix + std::to_string(Next++);
  }

  std::string def(const char *Prefix, const std::string &Init) {
    std::string Name = fresh(Prefix);
    Body << "  ExprRef " << Name << " = " << Init << ";\n";
    return Name;
  }

  std::string emitSym(const SymRef &S) {
    auto It = Names.find(S.get());
    if (It != Names.end())
      return It->second;
    std::string Name = fresh("s");
    Body << "  SymRef " << Name << " = freshSym(" << quote(S->name())
         << ", " << typeCpp(S->type()) << ");\n";
    Names.emplace(S.get(), Name);
    return Name;
  }

  std::string build(const ExprRef &E) {
    switch (E->kind()) {
    case ExprKind::ConstInt:
      return def("e", "constI64(" + i64Lit(cast<ConstIntExpr>(E)->value()) +
                          ")");
    case ExprKind::ConstFloat:
      return def("e", "constF64(" +
                          f64Lit(cast<ConstFloatExpr>(E)->value()) + ")");
    case ExprKind::ConstBool:
      return def("e", std::string("constBool(") +
                          (cast<ConstBoolExpr>(E)->value() ? "true"
                                                           : "false") +
                          ")");
    case ExprKind::Sym: {
      // Symbols are declared as SymRef; wrap for ExprRef use sites.
      SymRef S = std::static_pointer_cast<const SymExpr>(E);
      return "ExprRef(" + emitSym(S) + ")";
    }
    case ExprKind::Input:
      // Inputs are pre-declared by emitReplayCpp; reaching here means the
      // name map was not seeded.
      fatalError("emitReplayCpp: unseeded input node");
    case ExprKind::BinOp: {
      const auto *B = cast<BinOpExpr>(E);
      std::string L = emit(B->lhs()), R = emit(B->rhs());
      return def("e", std::string("binop(") + binOpCpp(B->op()) + ", " + L +
                          ", " + R + ")");
    }
    case ExprKind::UnOp: {
      const auto *U = cast<UnOpExpr>(E);
      std::string A = emit(U->operand());
      return def("e", std::string("unop(") + unOpCpp(U->op()) + ", " + A +
                          ")");
    }
    case ExprKind::Select: {
      const auto *S = cast<SelectExpr>(E);
      std::string C = emit(S->cond()), A = emit(S->trueVal()),
                  B2 = emit(S->falseVal());
      return def("e", "select(" + C + ", " + A + ", " + B2 + ")");
    }
    case ExprKind::Cast: {
      std::string A = emit(cast<CastExpr>(E)->operand());
      return def("e", "castTo(" + typeCpp(E->type()) + ", " + A + ")");
    }
    case ExprKind::ArrayRead: {
      const auto *R = cast<ArrayReadExpr>(E);
      std::string A = emit(R->array()), I = emit(R->index());
      return def("e", "arrayRead(" + A + ", " + I + ")");
    }
    case ExprKind::ArrayLen:
      return def("e", "arrayLen(" + emit(cast<ArrayLenExpr>(E)->array()) +
                          ")");
    case ExprKind::Flatten:
      return def("e", "flatten(" + emit(cast<FlattenExpr>(E)->array()) +
                          ")");
    case ExprKind::MakeStruct: {
      std::vector<std::string> Ops;
      for (const ExprRef &Op : E->ops())
        Ops.push_back(emit(Op));
      std::string S = "makeStruct(" + typeCpp(E->type()) + "->fields(), {";
      for (size_t I = 0; I < Ops.size(); ++I)
        S += (I ? ", " : "") + Ops[I];
      return def("e", S + "})");
    }
    case ExprKind::GetField: {
      const auto *G = cast<GetFieldExpr>(E);
      std::string B2 = emit(G->base());
      return def("e", "getField(" + B2 + ", " + quote(G->field()) + ")");
    }
    case ExprKind::Multiloop: {
      const auto *ML = cast<MultiloopExpr>(E);
      std::string Size = emit(ML->size());
      std::vector<std::string> GenNames;
      for (const Generator &G : ML->gens()) {
        std::string GN = fresh("g");
        GenNames.push_back(GN);
        // emitFunc/emit append their own declaration lines to Body, so the
        // sub-expressions must be fully emitted before the assignment line
        // that references them is started.
        std::string Cond = G.Cond.isSet() ? emitFunc(G.Cond) : "";
        std::string Key = G.Key.isSet() ? emitFunc(G.Key) : "";
        std::string Value = emitFunc(G.Value);
        std::string Reduce = G.Reduce.isSet() ? emitFunc(G.Reduce) : "";
        std::string NumKeys = G.NumKeys ? emit(G.NumKeys) : "";
        Body << "  Generator " << GN << ";\n";
        Body << "  " << GN << ".Kind = " << genKindCpp(G.Kind) << ";\n";
        if (!Cond.empty())
          Body << "  " << GN << ".Cond = " << Cond << ";\n";
        if (!Key.empty())
          Body << "  " << GN << ".Key = " << Key << ";\n";
        Body << "  " << GN << ".Value = " << Value << ";\n";
        if (!Reduce.empty())
          Body << "  " << GN << ".Reduce = " << Reduce << ";\n";
        if (!NumKeys.empty())
          Body << "  " << GN << ".NumKeys = " << NumKeys << ";\n";
      }
      std::string S = "multiloop(" + Size + ", {";
      for (size_t I = 0; I < GenNames.size(); ++I)
        S += (I ? ", " : "") + GenNames[I];
      return def("e", S + "})");
    }
    case ExprKind::LoopOut: {
      const auto *LO = cast<LoopOutExpr>(E);
      std::string L = emit(LO->loop());
      return def("e", "loopOut(" + L + ", " +
                          std::to_string(LO->index()) + ")");
    }
    }
    fatalError("emitReplayCpp: unknown expression kind");
  }

public:
  void seed(const Expr *Node, std::string Name) {
    Names.emplace(Node, std::move(Name));
  }
};

} // namespace

std::string dmll::fuzz::emitReplayCpp(const FuzzCase &C,
                                      const std::string &FnName) {
  std::ostringstream Out;
  Out << "// Replay for fuzz seed " << C.Seed << ". Program:\n";
  std::istringstream Dump(printProgram(C.P));
  std::string Line;
  while (std::getline(Dump, Line))
    Out << "//   " << Line << "\n";
  Out << "static dmll::fuzz::FuzzCase " << FnName << "() {\n"
      << "  using namespace dmll;\n"
      << "  fuzz::FuzzCase C;\n"
      << "  C.Seed = " << C.Seed << "ull;\n";

  std::ostringstream Body;
  Emitter E(Body);
  std::vector<std::string> InputNames;
  for (size_t I = 0; I < C.P.Inputs.size(); ++I) {
    const auto &In = C.P.Inputs[I];
    std::string Name = "in" + std::to_string(I);
    Body << "  auto " << Name << " = input(" << quote(In->name()) << ", "
         << typeCpp(In->type()) << ", " << hintCpp(In->hint()) << ");\n";
    E.seed(In.get(), Name);
    InputNames.push_back(Name);
  }
  std::string Result = E.emit(C.P.Result);
  Out << Body.str();

  Out << "  C.P.Inputs = {";
  for (size_t I = 0; I < InputNames.size(); ++I)
    Out << (I ? ", " : "") << InputNames[I];
  Out << "};\n"
      << "  C.P.Result = " << Result << ";\n";
  for (const auto &In : C.P.Inputs) {
    auto It = C.Inputs.find(In->name());
    if (It != C.Inputs.end())
      Out << "  C.Inputs.emplace(" << quote(In->name()) << ", "
          << valueCpp(It->second) << ");\n";
  }
  Out << "  return C;\n}\n";
  return Out.str();
}
