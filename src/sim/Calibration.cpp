//===- sim/Calibration.cpp -------------------------------------*- C++ -*-===//

#include "sim/Calibration.h"

#include "sim/Simulator.h"

#include <vector>

using namespace dmll;

namespace {

void addValue(SizeEnv &Env, const std::string &Path, const Value &V,
              const TypeRef &Ty) {
  if (Ty->isArray() && V.isArray()) {
    Env.ArrayLens[Path] = static_cast<double>(V.arraySize());
    return;
  }
  if (Ty->isStruct() && V.isStruct()) {
    const std::vector<Type::Field> &Fields = Ty->fields();
    const std::vector<Value> &Vals = V.strct()->Fields;
    for (size_t I = 0; I < Fields.size() && I < Vals.size(); ++I)
      addValue(Env, Path + "." + Fields[I].Name, Vals[I], Fields[I].Ty);
    return;
  }
  if (Ty->isScalar()) {
    if (V.isInt())
      Env.Scalars[Path] = static_cast<double>(V.asInt());
    else if (V.isFloat())
      Env.Scalars[Path] = V.asFloat();
    else if (V.isBool())
      Env.Scalars[Path] = V.asBool() ? 1.0 : 0.0;
  }
}

} // namespace

SizeEnv dmll::sizeEnvFromInputs(const Program &P, const InputMap &Inputs) {
  SizeEnv Env;
  for (const auto &In : P.Inputs) {
    auto It = Inputs.find(In->name());
    if (It == Inputs.end())
      continue;
    addValue(Env, In->name(), It->second, In->type());
  }
  return Env;
}

CalibrationReport dmll::calibrate(const Program &P, const PartitionInfo &Info,
                                  const SizeEnv &Env,
                                  const std::vector<LoopProfile> &Measured,
                                  const MachineModel &M, int CoresUsed) {
  CalibrationReport R;
  R.Machine = M.Name;
  R.Cores = CoresUsed < 1 ? 1 : CoresUsed;

  std::vector<LoopCost> Costs = analyzeCosts(P, Info, Env);
  std::vector<bool> Used(Costs.size(), false);
  Discipline D = Discipline::dmll();

  for (const LoopProfile &LP : Measured) {
    LoopCalibration C;
    C.Loop = LP.Loop;
    C.Engine = LP.Engine;
    C.Iters = LP.Iters;
    C.MeasuredMs = LP.Millis;
    C.Parallel = LP.Parallel;
    for (size_t I = 0; I < Costs.size(); ++I) {
      if (Used[I] || Costs[I].Signature != LP.Loop)
        continue;
      Used[I] = true;
      LoopCost LC = Costs[I];
      // The executor knows the real trip count; the SizeEnv estimate only
      // decides relative per-iteration traffic shares.
      LC.Iters = static_cast<double>(LP.Iters);
      SimResult Sim = simulateShared({LC}, M, R.Cores,
                                     MemPolicy::Partitioned, D);
      C.PredictedMs = Sim.Ms;
      C.Matched = true;
      break;
    }
    if (C.Matched && C.PredictedMs > 0)
      C.Ratio = C.MeasuredMs / C.PredictedMs;
    if (C.Matched) {
      R.MeasuredMs += C.MeasuredMs;
      R.PredictedMs += C.PredictedMs;
    }
    R.Loops.push_back(std::move(C));
  }
  return R;
}
