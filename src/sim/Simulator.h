//===- sim/Simulator.h - Analytic performance simulator --------*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns IR-derived LoopCosts (src/analysis/Cost.h) into simulated
/// execution times on the hardware models of MachineModel.h, under an
/// execution *discipline* describing how a framework runs the plan (DMLL
/// compiled code vs Spark's interpreted, per-op-materializing, serializing
/// runtime, etc.). The effects the paper studies arise mechanically:
///
///  * fusion -> fewer LoopCost entries -> fewer passes and task overheads;
///  * the Fig. 3 rewrites -> Interval instead of Unknown stencils -> local
///    streaming instead of trapped remote reads;
///  * NUMA-aware partitioning -> stream bandwidth scales with sockets,
///    pin-only/Delite saturate one socket's memory bus;
///  * Row-to-Column + transpose -> GPU kernels lose the vector-reduce and
///    uncoalesced-access penalties.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_SIM_SIMULATOR_H
#define DMLL_SIM_SIMULATOR_H

#include "analysis/Cost.h"
#include "sim/MachineModel.h"

#include <string>
#include <vector>

namespace dmll {

/// How partitioned (large) collections are placed across NUMA regions.
enum class MemPolicy {
  /// DMLL: partitioned arrays spread across every used socket's memory.
  Partitioned,
  /// DMLL pin-only: threads pinned with local heaps, but the shared input
  /// dataset lives in one socket's memory.
  PinnedSingleRegion,
  /// Delite/JVM: one memory region and unpinned threads, so even
  /// thread-local working sets bounce across sockets.
  UnpinnedSingleRegion,
};

/// How a framework executes the logical plan.
struct Discipline {
  const char *Name = "dmll";
  /// Per-element compute multiplier vs compiled C++ (JVM, boxing,
  /// iterators, virtual dispatch).
  double ComputeFactor = 1.0;
  /// Fixed scheduling cost per loop (per pass over the data).
  double PerLoopOverheadMs = 0.05;
  /// Cost per task; tasks ~ 2 chunks per worker per loop.
  double PerTaskOverheadMs = 0.002;
  /// Multiplier on bytes moved (boxed representations).
  double MemInflation = 1.0;
  /// Multiplier on bytes crossing machine boundaries (serialization).
  double SerializationFactor = 1.0;
  /// Whether intermediate collections are written + reread (no fusion at
  /// the runtime level; used with plans compiled without fusion).
  bool MaterializesIntermediates = false;

  static Discipline dmll();
  static Discipline dmllJvm(); ///< DMLL generating Scala on EC2 (Sec. 6.2)
  static Discipline delite();
  static Discipline spark();
  static Discipline powerGraph();
};

/// One simulated execution.
struct SimResult {
  double Ms = 0;
  double ComputeMs = 0;
  double MemoryMs = 0;
  double NetworkMs = 0;
  double OverheadMs = 0;

  void add(const SimResult &O) {
    Ms += O.Ms;
    ComputeMs += O.ComputeMs;
    MemoryMs += O.MemoryMs;
    NetworkMs += O.NetworkMs;
    OverheadMs += O.OverheadMs;
  }
};

/// Simulates \p Loops on \p M with \p CoresUsed workers.
SimResult simulateShared(const std::vector<LoopCost> &Loops,
                         const MachineModel &M, int CoresUsed,
                         MemPolicy Policy, const Discipline &D);

/// Simulates \p Loops on a cluster: iterations split over nodes, each node
/// running all its cores; Local inputs broadcast and reduction state
/// combined over the network. \p AmortizeIters spreads one-time transfers
/// (input broadcast) over that many iterations of an iterative algorithm.
SimResult simulateCluster(const std::vector<LoopCost> &Loops,
                          const ClusterModel &C, const Discipline &D,
                          int AmortizeIters = 1);

/// GPU execution options (which kernel-level choices were applied).
struct GpuExec {
  /// Row-to-Column applied: reductions are scalar (fit shared memory).
  bool ScalarReduce = true;
  /// Input matrix transposed on transfer: accesses coalesce.
  bool Transposed = true;
  /// One-time PCIe input transfer amortized over this many iterations.
  int AmortizeIters = 1;
  /// Bytes shipped to the device once.
  double InputBytes = 0;
};

/// Simulates \p Loops on one GPU.
SimResult simulateGpu(const std::vector<LoopCost> &Loops, const GpuModel &G,
                      const GpuExec &X);

/// Simulates a GPU cluster: per-node share of iterations on each node's
/// GPU plus cluster networking.
SimResult simulateGpuCluster(const std::vector<LoopCost> &Loops,
                             const ClusterModel &C, const GpuExec &X,
                             const Discipline &D);

} // namespace dmll

#endif // DMLL_SIM_SIMULATOR_H
