//===- sim/MachineModel.cpp ------------------------------------*- C++ -*-===//

#include "sim/MachineModel.h"

#include <thread>

using namespace dmll;

MachineModel MachineModel::host() {
  MachineModel M;
  M.Name = "host";
  M.Sockets = 1;
  unsigned HW = std::thread::hardware_concurrency();
  M.CoresPerSocket = HW ? static_cast<int>(HW) : 1;
  // Generic commodity-core constants: calibration compares shapes and
  // ratios, so order-of-magnitude nominal values are the right fidelity.
  M.CoreGflops = 4.0;
  M.SocketBandwidthGBs = 20.0;
  M.InterSocketGBs = 20.0;
  M.CacheBandwidthGBs = 100.0;
  M.LlcMB = 8.0;
  return M;
}

MachineModel MachineModel::numa4x12() {
  MachineModel M;
  M.Name = "numa-4x12";
  M.Sockets = 4;
  M.CoresPerSocket = 12;
  M.CoreGflops = 4.0;
  M.SocketBandwidthGBs = 35.0;
  M.InterSocketGBs = 12.0;
  M.CacheBandwidthGBs = 200.0;
  M.LlcMB = 30.0;
  return M;
}

MachineModel MachineModel::m1xlarge() {
  MachineModel M;
  M.Name = "m1.xlarge";
  M.Sockets = 1;
  M.CoresPerSocket = 4;
  M.CoreGflops = 2.0;
  M.SocketBandwidthGBs = 10.0;
  M.InterSocketGBs = 10.0;
  M.CacheBandwidthGBs = 80.0;
  M.LlcMB = 8.0;
  return M;
}

MachineModel MachineModel::x5680() {
  MachineModel M;
  M.Name = "x5680";
  M.Sockets = 2;
  M.CoresPerSocket = 6;
  M.CoreGflops = 3.5;
  M.SocketBandwidthGBs = 25.0;
  M.InterSocketGBs = 10.0;
  M.CacheBandwidthGBs = 150.0;
  M.LlcMB = 12.0;
  return M;
}

NetworkModel NetworkModel::gigE() {
  NetworkModel N;
  N.GbitPerSec = 1.0;
  N.LatencyUs = 100.0;
  return N;
}

GpuModel GpuModel::teslaC2050() {
  GpuModel G;
  G.Name = "tesla-c2050";
  G.Gflops = 500.0;
  G.MemBandwidthGBs = 120.0;
  G.PcieGBs = 6.0;
  G.VectorReducePenalty = 2.5;
  G.UncoalescedPenalty = 2.0;
  G.RandomAccessPenalty = 10.0;
  return G;
}

ClusterModel ClusterModel::ec2_20() {
  ClusterModel C;
  C.Name = "ec2-20-m1.xlarge";
  C.Nodes = 20;
  C.Node = MachineModel::m1xlarge();
  C.Net = NetworkModel::gigE();
  return C;
}

ClusterModel ClusterModel::gpu4() {
  ClusterModel C;
  C.Name = "gpu-cluster-4";
  C.Nodes = 4;
  C.Node = MachineModel::x5680();
  C.Net = NetworkModel::gigE();
  C.HasGpu = true;
  C.Gpu = GpuModel::teslaC2050();
  return C;
}
