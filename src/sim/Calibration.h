//===- sim/Calibration.h - Simulator vs measured calibration ---*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closes the loop between the analytic simulator (sim/Simulator.h) and the
/// real shared-memory executor: for every loop a run actually measured
/// (LoopProfile, observe/Metrics.h) it replays the simulator's prediction
/// for that loop on a host machine model and reports the predicted and
/// measured times side by side. The ratio column is the calibration signal
/// — a stable ratio across loops means the model's *relative* costs (what
/// the paper's figures depend on) are trustworthy even when its absolute
/// constants are nominal; an outlier ratio flags a loop whose cost analysis
/// misclassifies its traffic.
///
/// Measured iteration counts replace the SizeEnv-derived estimates before
/// simulating, so the comparison isolates per-iteration model error from
/// dataset-metadata error. Loops the cost analysis does not see (nested
/// loops memoized inside another loop's body) appear unmatched.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_SIM_CALIBRATION_H
#define DMLL_SIM_CALIBRATION_H

#include "analysis/Cost.h"
#include "interp/Interp.h"
#include "observe/Metrics.h"
#include "sim/MachineModel.h"

#include <string>
#include <vector>

namespace dmll {

/// Predicted-vs-measured record for one executed loop.
struct LoopCalibration {
  std::string Loop;   ///< loopSignature
  std::string Engine; ///< engine that ran it ("interp" | "kernel")
  int64_t Iters = 0;
  double MeasuredMs = 0;
  double PredictedMs = 0; ///< 0 when unmatched
  /// MeasuredMs / PredictedMs; 0 when the prediction is missing or zero.
  double Ratio = 0;
  bool Matched = false; ///< a LoopCost with this signature was found
  bool Parallel = false;
};

/// Calibration of one execution: per-loop records plus matched totals.
struct CalibrationReport {
  std::string Machine; ///< machine model the predictions used
  int Cores = 1;       ///< worker count the predictions used
  double MeasuredMs = 0;  ///< sum over matched loops
  double PredictedMs = 0; ///< sum over matched loops
  std::vector<LoopCalibration> Loops;

  /// MeasuredMs / PredictedMs over the matched totals (0 if empty).
  double overallRatio() const {
    return PredictedMs > 0 ? MeasuredMs / PredictedMs : 0;
  }
};

/// Builds the cost model's dataset metadata from actual input values:
/// scalar inputs and scalar struct fields land in Scalars, array inputs
/// and array struct fields land in ArrayLens, keyed by input field path
/// ("matrix.rows", "matrix.data", "y").
SizeEnv sizeEnvFromInputs(const Program &P, const InputMap &Inputs);

/// Pairs \p Measured (execution order) against analyzeCosts(P, Info, Env)
/// by loop signature (first-come matching for repeated signatures) and
/// simulates each matched loop on \p M with \p CoresUsed workers under the
/// DMLL discipline, with the measured iteration count substituted in.
CalibrationReport calibrate(const Program &P, const PartitionInfo &Info,
                            const SizeEnv &Env,
                            const std::vector<LoopProfile> &Measured,
                            const MachineModel &M, int CoresUsed);

} // namespace dmll

#endif // DMLL_SIM_CALIBRATION_H
