//===- sim/Simulator.cpp ---------------------------------------*- C++ -*-===//

#include "sim/Simulator.h"

#include "observe/Trace.h"

#include <algorithm>
#include <cmath>

using namespace dmll;

Discipline Discipline::dmll() {
  Discipline D;
  D.Name = "DMLL";
  return D;
}

Discipline Discipline::dmllJvm() {
  Discipline D;
  D.Name = "DMLL-JVM";
  D.ComputeFactor = 1.6; // generated Scala instead of C++ (Section 6.2)
  D.MemInflation = 1.2;
  D.PerLoopOverheadMs = 0.5;
  D.PerTaskOverheadMs = 0.02;
  return D;
}

Discipline Discipline::delite() {
  Discipline D;
  D.Name = "Delite";
  D.ComputeFactor = 1.05; // same generated code, heavier runtime
  D.PerLoopOverheadMs = 0.1;
  return D;
}

Discipline Discipline::spark() {
  Discipline D;
  D.Name = "Spark";
  D.ComputeFactor = 2.5;  // JVM + boxed records + iterator chains
  D.MemInflation = 2.0;   // object headers / boxing
  D.PerLoopOverheadMs = 2.0;
  D.PerTaskOverheadMs = 0.5;
  D.SerializationFactor = 3.0;
  D.MaterializesIntermediates = true;
  return D;
}

Discipline Discipline::powerGraph() {
  Discipline D;
  D.Name = "PowerGraph";
  D.ComputeFactor = 2.2; // C++ library with per-vertex virtual dispatch
  D.MemInflation = 1.5;
  D.PerLoopOverheadMs = 0.5;
  D.PerTaskOverheadMs = 0.05;
  D.SerializationFactor = 1.5;
  return D;
}

namespace {

/// Memory-traffic time for one loop on a shared-memory machine.
double memoryMs(const LoopCost &L, const MachineModel &M, int SocketsUsed,
                MemPolicy Policy, const Discipline &D) {
  double Stream = L.Iters * L.StreamBytesPerIter * D.MemInflation;
  double Cached = L.Iters * L.CachedBytesPerIter * D.MemInflation;
  double Strided = L.Iters * L.StridedBytesPerIter * D.MemInflation;
  double Random = L.Iters * L.RandomBytesPerIter * D.MemInflation;
  double Writes = L.Iters * L.WriteBytesPerIter * D.MemInflation;
  double Shuffle = L.Iters * L.ShuffleBytesPerIter * D.MemInflation;
  if (D.MaterializesIntermediates)
    Writes *= 2.0; // write out, read back

  double LocalBw = M.SocketBandwidthGBs * 1e9;
  double InterBw = M.InterSocketGBs * 1e9;
  // Random reads of partitioned data: 1/S of requests stay local; remote
  // requests spread over every socket's interconnect link, all at reduced
  // (latency-bound) efficiency.
  auto RandomMix = [&](double LocalShareBw, int S) {
    double SingleSocket = LocalShareBw * 0.25;
    if (S <= 1)
      return SingleSocket;
    double Local = 1.0 / S, Remote = 1.0 - Local;
    double RemoteBw = InterBw * S; // every socket's link participates
    double Mix = 0.25 / (Local / LocalShareBw + Remote / RemoteBw);
    // Partitioning never makes random access slower than keeping the data
    // on one socket would.
    return std::max(Mix, SingleSocket);
  };

  double StreamBw = LocalBw, CachedBw = LocalBw, RandomBw = LocalBw,
         ShuffleBw = LocalBw;
  switch (Policy) {
  case MemPolicy::Partitioned:
    // Partitioned arrays stream from every used socket's memory at once.
    StreamBw = LocalBw * SocketsUsed;
    CachedBw = M.CacheBandwidthGBs * 1e9 * SocketsUsed;
    RandomBw = RandomMix(LocalBw, SocketsUsed);
    // Scattered bucket writes cross sockets once more than one is used.
    ShuffleBw = SocketsUsed > 1 ? InterBw * SocketsUsed * 0.5 : LocalBw;
    break;
  case MemPolicy::PinnedSingleRegion:
    // The big dataset lives in one region: its memory bus is the cap, but
    // pinned thread-local working sets stay local and fast.
    StreamBw = LocalBw;
    CachedBw = M.CacheBandwidthGBs * 1e9 * SocketsUsed;
    RandomBw = RandomMix(LocalBw, SocketsUsed);
    ShuffleBw = SocketsUsed > 1 ? InterBw : LocalBw;
    break;
  case MemPolicy::UnpinnedSingleRegion: {
    // One region and migrating threads: beyond one socket, even the
    // nested-loop working sets cross the interconnect.
    // Everything — the dataset and all thread-local temporaries — is
    // allocated in one region, so past one socket the home socket's memory
    // bus serves the entire machine's demand. This is why Delite "stops
    // scaling after two sockets" in Fig. 7.
    StreamBw = LocalBw;
    CachedBw = SocketsUsed > 1 ? LocalBw : M.CacheBandwidthGBs * 1e9;
    RandomBw = SocketsUsed > 1 ? InterBw * 0.25 : LocalBw * 0.25;
    ShuffleBw = SocketsUsed > 1 ? InterBw : LocalBw;
    break;
  }
  }
  // Cached traffic only enjoys cache bandwidth while the broadcast
  // collections actually fit in the LLC.
  if (L.BroadcastBytes > M.LlcMB * 1e6)
    CachedBw = StreamBw;

  double Ms = 0;
  Ms += Stream / StreamBw * 1e3;
  // Strided walks waste most of each cache line (8 useful bytes of 64).
  Ms += Strided / (StreamBw / 6.0) * 1e3;
  Ms += Cached / CachedBw * 1e3;
  if (Random > 0)
    Ms += Random / std::max(RandomBw, 1.0) * 1e3;
  Ms += Writes / StreamBw * 1e3;
  Ms += Shuffle / ShuffleBw * 1e3;
  return Ms;
}

} // namespace

SimResult dmll::simulateShared(const std::vector<LoopCost> &Loops,
                               const MachineModel &M, int CoresUsed,
                               MemPolicy Policy, const Discipline &D) {
  TraceSpan Span("sim.shared", "analysis");
  SimResult R;
  CoresUsed = std::max(1, std::min(CoresUsed, M.cores()));
  int SocketsUsed = M.socketsUsed(CoresUsed);
  for (const LoopCost &L : Loops) {
    double ComputeMs = L.Iters * L.FlopsPerIter /
                       (M.CoreGflops * 1e9 * CoresUsed) * 1e3 *
                       D.ComputeFactor;
    double MemMs = memoryMs(L, M, SocketsUsed, Policy, D) /
                   // Memory parallelism is already in the bandwidth model,
                   // but a few cores cannot saturate a socket's bus (one
                   // core reaches roughly a fifth of it).
                   std::min(1.0, 0.18 * CoresUsed);
    // Combining per-worker reduction state at the barrier.
    double CombineMs =
        L.CombineBytes * CoresUsed / (M.SocketBandwidthGBs * 1e9) * 1e3;
    double Tasks = CoresUsed * 2.0;
    double OverheadMs = D.PerLoopOverheadMs + D.PerTaskOverheadMs * Tasks;
    SimResult LoopR;
    LoopR.ComputeMs = ComputeMs;
    LoopR.MemoryMs = MemMs + CombineMs;
    LoopR.OverheadMs = OverheadMs;
    LoopR.Ms = std::max(ComputeMs, MemMs) + CombineMs + OverheadMs;
    R.add(LoopR);
  }
  return R;
}

SimResult dmll::simulateCluster(const std::vector<LoopCost> &Loops,
                                const ClusterModel &C, const Discipline &D,
                                int AmortizeIters) {
  TraceSpan Span("sim.cluster", "analysis");
  SimResult R;
  double NetBps = C.Net.bytesPerSec();
  for (const LoopCost &L : Loops) {
    // Each node runs its share of the iteration space on all its cores.
    LoopCost Share = L;
    Share.Iters = L.Iters / C.Nodes;
    SimResult NodeR = simulateShared(
        {Share}, C.Node, C.Node.cores(),
        C.Node.Sockets > 1 ? MemPolicy::Partitioned
                           : MemPolicy::PinnedSingleRegion,
        D);

    // Network: broadcast of Local collections consumed by the loop (and
    // of the loop body), amortized for iterative algorithms when the data
    // is resident; reduction state gathered from every node.
    double BroadcastBytes =
        L.BroadcastBytes * D.SerializationFactor / AmortizeIters;
    double CombineBytes = L.CombineBytes * C.Nodes * D.SerializationFactor;
    // Bucket shuffles move their scattered traffic across the network, and
    // trapped remote reads (Unknown stencils: graphs) fetch (N-1)/N of
    // their bytes from other machines — why the paper finds cluster graph
    // analytics slower than one NUMA machine.
    double ShuffleBytes =
        L.Iters * L.ShuffleBytesPerIter * D.SerializationFactor;
    double RemoteReadBytes = L.Iters * L.RandomBytesPerIter *
                             (C.Nodes - 1.0) / C.Nodes *
                             D.SerializationFactor;
    double NetworkMs =
        (BroadcastBytes + CombineBytes + ShuffleBytes + RemoteReadBytes) /
            NetBps * 1e3 +
        C.Net.LatencyUs / 1e3 * 2.0 * std::log2(std::max(2, C.Nodes));

    double Tasks = C.Nodes * C.Node.cores() * 2.0;
    double OverheadMs = D.PerLoopOverheadMs + D.PerTaskOverheadMs * Tasks;

    SimResult LoopR;
    LoopR.ComputeMs = NodeR.ComputeMs;
    LoopR.MemoryMs = NodeR.MemoryMs;
    LoopR.NetworkMs = NetworkMs;
    LoopR.OverheadMs = OverheadMs;
    LoopR.Ms = NodeR.Ms - NodeR.OverheadMs + NetworkMs + OverheadMs;
    R.add(LoopR);
  }
  return R;
}

SimResult dmll::simulateGpu(const std::vector<LoopCost> &Loops,
                            const GpuModel &G, const GpuExec &X) {
  TraceSpan Span("sim.gpu", "analysis");
  SimResult R;
  for (const LoopCost &L : Loops) {
    double ComputeMs = L.Iters * L.FlopsPerIter / (G.Gflops * 1e9) * 1e3;
    // With thread == loop index, row-interval reads stride by the row
    // length across adjacent threads: uncoalesced until the input matrix
    // is transposed on transfer. Column-strided reads are the coalesced
    // ones on a GPU (adjacent threads hit adjacent addresses), and GPU
    // caches are too small for re-touches to stay resident, so "cached"
    // traffic pays the same coalescing rules as first touches.
    double StreamBytes = L.Iters *
                         (L.StreamBytesPerIter + L.CachedBytesPerIter) *
                         (X.Transposed ? 1.0 : G.UncoalescedPenalty);
    double OtherBytes =
        L.Iters * (L.StridedBytesPerIter + L.WriteBytesPerIter +
                   2.0 * L.ShuffleBytesPerIter);
    // Non-scalar reduction accumulators spill to global memory: each
    // iteration read-modify-writes the whole vector (VectorReducePenalty
    // scales the spill's effective cost).
    double SpillBytes =
        (L.VectorReduce && !X.ScalarReduce)
            ? L.Iters * 2.0 * L.ReduceValueBytes * G.VectorReducePenalty
            : 0.0;
    double MemMs = (StreamBytes + OtherBytes + SpillBytes) /
                   (G.MemBandwidthGBs * 1e9) * 1e3;
    double RandomMs = L.Iters * L.RandomBytesPerIter *
                      G.RandomAccessPenalty / (G.MemBandwidthGBs * 1e9) *
                      1e3;
    SimResult LoopR;
    LoopR.ComputeMs = ComputeMs;
    LoopR.MemoryMs = MemMs + RandomMs;
    LoopR.OverheadMs = 0.05; // kernel launch
    LoopR.Ms = std::max(ComputeMs, MemMs + RandomMs) + LoopR.OverheadMs;
    R.add(LoopR);
  }
  // One-time transfer over PCIe, amortized across iterations.
  double PcieMs =
      X.InputBytes / (G.PcieGBs * 1e9) * 1e3 / std::max(1, X.AmortizeIters);
  R.NetworkMs += PcieMs;
  R.Ms += PcieMs;
  return R;
}

SimResult dmll::simulateGpuCluster(const std::vector<LoopCost> &Loops,
                                   const ClusterModel &C, const GpuExec &X,
                                   const Discipline &D) {
  TraceSpan Span("sim.gpu-cluster", "analysis");
  SimResult R;
  double NetBps = C.Net.bytesPerSec();
  for (const LoopCost &L : Loops) {
    LoopCost Share = L;
    Share.Iters = L.Iters / C.Nodes;
    GpuExec NodeX = X;
    NodeX.InputBytes = X.InputBytes / C.Nodes;
    SimResult NodeR = simulateGpu({Share}, C.Gpu, NodeX);
    double NetworkMs =
        (L.BroadcastBytes / X.AmortizeIters +
         L.CombineBytes * C.Nodes * D.SerializationFactor) /
            NetBps * 1e3 +
        C.Net.LatencyUs / 1e3 * 2.0;
    NodeR.NetworkMs += NetworkMs;
    NodeR.Ms += NetworkMs;
    R.add(NodeR);
  }
  return R;
}
