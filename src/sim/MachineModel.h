//===- sim/MachineModel.h - Hardware models for the simulator --*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized models of the paper's evaluation hardware (DESIGN.md §2's
/// substitution for machines we do not have): the 4-socket Xeon E5-4657L
/// NUMA box, Amazon m1.xlarge nodes, the 4-node X5680 + Tesla C2050 GPU
/// cluster, and 1GbE interconnects. Bandwidth/compute constants are
/// nominal-spec-order values; the simulator derives *relative* behaviour
/// (scaling curves, crossovers) from them together with the IR cost
/// analysis, and only shapes are compared against the paper.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_SIM_MACHINEMODEL_H
#define DMLL_SIM_MACHINEMODEL_H

namespace dmll {

/// A shared-memory (possibly NUMA) machine.
struct MachineModel {
  const char *Name = "machine";
  int Sockets = 1;
  int CoresPerSocket = 1;
  /// Sustainable double-precision Gflop/s per core.
  double CoreGflops = 4.0;
  /// Local DRAM bandwidth per socket, GB/s.
  double SocketBandwidthGBs = 30.0;
  /// Inter-socket link bandwidth (per direction, aggregate), GB/s.
  double InterSocketGBs = 12.0;
  /// Effective bandwidth for LLC-resident data per socket, GB/s.
  double CacheBandwidthGBs = 150.0;
  /// LLC capacity per socket, MB (decides cache residency of small
  /// broadcast collections).
  double LlcMB = 30.0;

  int cores() const { return Sockets * CoresPerSocket; }
  /// Sockets spanned when \p CoresUsed threads are packed socket-first.
  int socketsUsed(int CoresUsed) const {
    int S = (CoresUsed + CoresPerSocket - 1) / CoresPerSocket;
    return S < 1 ? 1 : (S > Sockets ? Sockets : S);
  }

  /// The paper's 4-socket, 12-core E5-4657L machine (256 GB per socket).
  static MachineModel numa4x12();
  /// Amazon m1.xlarge: 4 virtual cores, modest memory system.
  static MachineModel m1xlarge();
  /// 12-core Xeon X5680 node of the GPU cluster.
  static MachineModel x5680();
  /// The machine this process runs on: one socket with the hardware
  /// concurrency and generic-commodity memory constants. Used by the
  /// calibration layer (sim/Calibration.h) to predict what the simulator
  /// *would* say about a loop we then actually measure.
  static MachineModel host();
};

/// A network interconnect.
struct NetworkModel {
  double GbitPerSec = 1.0;
  double LatencyUs = 100.0;

  double bytesPerSec() const { return GbitPerSec * 1e9 / 8.0; }
  /// 1Gb Ethernet (both paper clusters).
  static NetworkModel gigE();
};

/// A discrete GPU.
struct GpuModel {
  const char *Name = "gpu";
  double Gflops = 500.0;
  double MemBandwidthGBs = 120.0;
  double PcieGBs = 6.0;
  /// Slowdown of reductions over non-scalar values (temporaries spill out
  /// of shared memory, Section 6).
  double VectorReducePenalty = 2.5;
  /// Slowdown of non-coalesced (untransposed row-major) access.
  double UncoalescedPenalty = 2.0;
  /// Slowdown of data-dependent random reads (Gibbs, graphs).
  double RandomAccessPenalty = 10.0;

  /// NVIDIA Tesla C2050 (the paper's GPU).
  static GpuModel teslaC2050();
};

/// A cluster of identical machines.
struct ClusterModel {
  const char *Name = "cluster";
  int Nodes = 1;
  MachineModel Node;
  NetworkModel Net;
  bool HasGpu = false;
  GpuModel Gpu;

  /// The 20-node m1.xlarge EC2 cluster (Section 6.2).
  static ClusterModel ec2_20();
  /// The 4-node X5680 + C2050 cluster.
  static ClusterModel gpu4();
};

} // namespace dmll

#endif // DMLL_SIM_MACHINEMODEL_H
