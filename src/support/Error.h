//===- support/Error.h - Traps, fatal errors, diagnostics ------*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error reporting for three distinct failure classes (docs/ROBUSTNESS.md):
///
///  * Recoverable *traps* — runtime faults of the evaluated user program
///    (division by zero, out-of-range reads, bad bucket keys, deadline /
///    budget overruns). These throw TrapError via trap(), unwind cleanly
///    out of Interp / KernelVM / worker chunks, and surface as a structured
///    ExecResult at the evalProgramRecover / executeProgram boundary. A
///    process hosting many queries survives them.
///  * Violated *invariants* — compiler or runtime bugs (type confusion in
///    the IR builder, unreachable codegen cases). These still abort via
///    fatalError / dmllUnreachable: the process state can no longer be
///    trusted.
///  * Compiler *warnings* — user-facing conditions (e.g. the partitioning
///    analysis of Algorithm 1 calling `warn()`) routed to a DiagSink that
///    callers can capture.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_SUPPORT_ERROR_H
#define DMLL_SUPPORT_ERROR_H

#include <exception>
#include <string>
#include <vector>

namespace dmll {

/// Why a recoverable execution unwound (docs/ROBUSTNESS.md trap taxonomy).
enum class TrapKind {
  Trap,     ///< user-program runtime fault (div/0, OOR read, bad key, ...)
  Deadline, ///< ExecLimits::DeadlineMs expired
  Budget,   ///< ExecLimits memory / iteration budget exhausted
};

const char *trapKindName(TrapKind K);

/// The structured, recoverable trap: thrown by trap() (and by the runtime
/// limit checks in runtime/Cancel.h), caught at the executor boundary and
/// converted into an ExecResult. Worker threads never let it escape — the
/// ThreadPool catches it at chunk boundaries and rethrows the winning trap
/// on the dispatching thread.
class TrapError : public std::exception {
public:
  TrapError(TrapKind K, std::string Msg, std::string Loop = {})
      : Kind(K), Msg(std::move(Msg)), LoopSig(std::move(Loop)) {}

  const char *what() const noexcept override { return Msg.c_str(); }
  const std::string &message() const { return Msg; }
  /// Signature of the innermost closed multiloop that was executing when
  /// the trap fired; empty when the trap hit outside any closed loop.
  const std::string &loop() const { return LoopSig; }
  void setLoop(const std::string &Sig) { LoopSig = Sig; }
  TrapKind kind() const { return Kind; }

private:
  TrapKind Kind;
  std::string Msg;
  std::string LoopSig;
};

/// Reports a recoverable user-program trap: notifies the trap hook (so the
/// telemetry event log records it) and throws TrapError{TrapKind::Trap}.
/// Never returns; unlike fatalError it does not abort and does not print.
[[noreturn]] void trap(const std::string &Msg);

/// Like trap() but with an explicit kind (deadline / budget overruns).
[[noreturn]] void trapWithKind(TrapKind K, const std::string &Msg);

/// Prints \p Msg to stderr and aborts. Used for violated invariants that
/// cannot be expressed as a plain assert (e.g. carry runtime data).
[[noreturn]] void fatalError(const std::string &Msg);

/// Observer invoked with the message by fatalError just before the abort
/// and by trap()/trapWithKind() just before the throw. Installed by the
/// telemetry event log (observe/Events.h) so every trap — recovered or
/// fatal — lands in the JSONL stream; null clears. The hook must not
/// itself call fatalError or trap.
using FatalErrorHook = void (*)(const std::string &Msg);
void setFatalErrorHook(FatalErrorHook H);

/// Marks a point in the code that must never be reached.
[[noreturn]] void dmllUnreachable(const char *Msg);

/// Collects compiler warnings (the `warn()` calls of Algorithm 1 and the
/// stencil fallback of Section 4.2) so tests can assert on them and tools can
/// print them.
class DiagSink {
public:
  /// Records one warning message.
  void warn(const std::string &Msg) { Warnings.push_back(Msg); }

  /// All warnings recorded so far, in emission order.
  const std::vector<std::string> &warnings() const { return Warnings; }

  /// True if at least one warning whose text contains \p Substr was emitted.
  bool hasWarningContaining(const std::string &Substr) const;

  /// Drops all recorded warnings.
  void clear() { Warnings.clear(); }

private:
  std::vector<std::string> Warnings;
};

} // namespace dmll

#endif // DMLL_SUPPORT_ERROR_H
