//===- support/Error.h - Fatal errors and diagnostics ----------*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting and a lightweight diagnostic (warning) sink used by
/// the compiler analyses. Library code never throws; invariant violations
/// abort via fatalError / dmll_unreachable, and user-facing conditions (e.g.
/// the partitioning analysis of Algorithm 1 calling `warn()`) are routed to
/// a DiagSink that callers can capture.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_SUPPORT_ERROR_H
#define DMLL_SUPPORT_ERROR_H

#include <string>
#include <vector>

namespace dmll {

/// Prints \p Msg to stderr and aborts. Used for violated invariants that
/// cannot be expressed as a plain assert (e.g. carry runtime data).
[[noreturn]] void fatalError(const std::string &Msg);

/// Observer invoked by fatalError with the message just before the abort.
/// Installed by the telemetry event log (observe/Events.h) so a trap still
/// lands in the JSONL stream; null clears. The hook must not itself call
/// fatalError.
using FatalErrorHook = void (*)(const std::string &Msg);
void setFatalErrorHook(FatalErrorHook H);

/// Marks a point in the code that must never be reached.
[[noreturn]] void dmllUnreachable(const char *Msg);

/// Collects compiler warnings (the `warn()` calls of Algorithm 1 and the
/// stencil fallback of Section 4.2) so tests can assert on them and tools can
/// print them.
class DiagSink {
public:
  /// Records one warning message.
  void warn(const std::string &Msg) { Warnings.push_back(Msg); }

  /// All warnings recorded so far, in emission order.
  const std::vector<std::string> &warnings() const { return Warnings; }

  /// True if at least one warning whose text contains \p Substr was emitted.
  bool hasWarningContaining(const std::string &Substr) const;

  /// Drops all recorded warnings.
  void clear() { Warnings.clear(); }

private:
  std::vector<std::string> Warnings;
};

} // namespace dmll

#endif // DMLL_SUPPORT_ERROR_H
