//===- support/Net.cpp - Loopback socket helpers ---------------*- C++ -*-===//

#include "support/Net.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace dmll;

bool net::sendAll(int Fd, const void *Data, size_t Len) {
  const char *P = static_cast<const char *>(Data);
  size_t Off = 0;
  while (Off < Len) {
    ssize_t W = ::send(Fd, P + Off, Len - Off, MSG_NOSIGNAL);
    if (W < 0 && errno == ENOTSOCK)
      W = ::write(Fd, P + Off, Len - Off); // pipe fd (dmll-serve --stdio)
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (W == 0)
      return false;
    Off += static_cast<size_t>(W);
  }
  return true;
}

bool net::sendAll(int Fd, const std::string &Data) {
  return sendAll(Fd, Data.data(), Data.size());
}

bool net::recvAll(int Fd, void *Data, size_t Len) {
  char *P = static_cast<char *>(Data);
  size_t Off = 0;
  while (Off < Len) {
    ssize_t R = ::recv(Fd, P + Off, Len - Off, 0);
    if (R < 0 && errno == ENOTSOCK)
      R = ::read(Fd, P + Off, Len - Off); // pipe fd (dmll-serve --stdio)
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (R == 0)
      return false; // EOF mid-message
    Off += static_cast<size_t>(R);
  }
  return true;
}

int net::listenLoopback(int Port, int Backlog, int *BoundPort) {
  if (BoundPort)
    *BoundPort = 0;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, Backlog) != 0) {
    ::close(Fd);
    return -1;
  }
  if (BoundPort) {
    sockaddr_in Got{};
    socklen_t Len = sizeof(Got);
    if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Got), &Len) == 0)
      *BoundPort = static_cast<int>(ntohs(Got.sin_port));
  }
  return Fd;
}

int net::connectLoopback(int Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  for (;;) {
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) == 0)
      return Fd;
    if (errno == EINTR)
      continue;
    ::close(Fd);
    return -1;
  }
}

bool net::pollIn(int Fd, int TimeoutMs) {
  pollfd P{Fd, POLLIN, 0};
  for (;;) {
    int N = ::poll(&P, 1, TimeoutMs);
    if (N < 0 && errno == EINTR)
      continue;
    return N > 0 && (P.revents & (POLLIN | POLLHUP));
  }
}

std::string net::drainRequest(int Fd, size_t MaxBytes, int TimeoutMs) {
  std::string Req;
  // Slice the timeout so a drip-feeding peer cannot hold us past it.
  int Left = TimeoutMs;
  while (Req.size() < MaxBytes && Left >= 0) {
    int Slice = Left < 20 ? Left : 20;
    Left -= Slice > 0 ? Slice : 1;
    if (!pollIn(Fd, Slice))
      continue;
    char Buf[1024];
    ssize_t R = ::recv(Fd, Buf, sizeof(Buf), MSG_DONTWAIT);
    if (R < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      break;
    }
    if (R == 0)
      break; // peer closed its half
    Req.append(Buf, static_cast<size_t>(R));
    if (Req.find("\r\n\r\n") != std::string::npos ||
        Req.find("\n\n") != std::string::npos)
      break; // a complete HTTP-style request header block
  }
  return Req;
}
