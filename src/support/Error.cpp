//===- support/Error.cpp --------------------------------------*- C++ -*-===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace dmll;

void dmll::fatalError(const std::string &Msg) {
  std::fprintf(stderr, "dmll fatal error: %s\n", Msg.c_str());
  std::abort();
}

void dmll::dmllUnreachable(const char *Msg) {
  std::fprintf(stderr, "dmll unreachable: %s\n", Msg);
  std::abort();
}

bool DiagSink::hasWarningContaining(const std::string &Substr) const {
  for (const std::string &W : Warnings)
    if (W.find(Substr) != std::string::npos)
      return true;
  return false;
}
