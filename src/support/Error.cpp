//===- support/Error.cpp --------------------------------------*- C++ -*-===//

#include "support/Error.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

using namespace dmll;

namespace {
std::atomic<FatalErrorHook> Hook{nullptr};
} // namespace

const char *dmll::trapKindName(TrapKind K) {
  switch (K) {
  case TrapKind::Trap:
    return "trap";
  case TrapKind::Deadline:
    return "deadline";
  case TrapKind::Budget:
    return "budget";
  }
  return "?";
}

void dmll::setFatalErrorHook(FatalErrorHook H) {
  Hook.store(H, std::memory_order_release);
}

void dmll::trap(const std::string &Msg) { trapWithKind(TrapKind::Trap, Msg); }

void dmll::trapWithKind(TrapKind K, const std::string &Msg) {
  if (FatalErrorHook H = Hook.load(std::memory_order_acquire))
    H(Msg);
  throw TrapError(K, Msg);
}

void dmll::fatalError(const std::string &Msg) {
  std::fprintf(stderr, "dmll fatal error: %s\n", Msg.c_str());
  if (FatalErrorHook H = Hook.load(std::memory_order_acquire))
    H(Msg);
  std::abort();
}

void dmll::dmllUnreachable(const char *Msg) {
  std::fprintf(stderr, "dmll unreachable: %s\n", Msg);
  std::abort();
}

bool DiagSink::hasWarningContaining(const std::string &Substr) const {
  for (const std::string &W : Warnings)
    if (W.find(Substr) != std::string::npos)
      return true;
  return false;
}
