//===- support/Rng.cpp ----------------------------------------*- C++ -*-===//

#include "support/Rng.h"

#include <cassert>
#include <cmath>

using namespace dmll;

static uint64_t splitmix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

Rng::Rng(uint64_t Seed) {
  for (uint64_t &S : State)
    S = splitmix64(Seed);
  // Avoid the all-zero state, which is a fixed point of xoshiro.
  if (!(State[0] | State[1] | State[2] | State[3]))
    State[0] = 1;
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow requires a nonzero bound");
  // Modulo bias is irrelevant for synthetic-data purposes.
  return next() % Bound;
}

double Rng::nextDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::nextGaussian() {
  if (HasSpare) {
    HasSpare = false;
    return Spare;
  }
  double U, V, S;
  do {
    U = 2.0 * nextDouble() - 1.0;
    V = 2.0 * nextDouble() - 1.0;
    S = U * U + V * V;
  } while (S >= 1.0 || S == 0.0);
  double Mul = std::sqrt(-2.0 * std::log(S) / S);
  Spare = V * Mul;
  HasSpare = true;
  return U * Mul;
}
