//===- support/Rng.h - Deterministic pseudo-random numbers -----*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, fully deterministic PRNG (xoshiro256**) used by all
/// synthetic dataset generators and property tests so every run of the test
/// and benchmark suites sees identical data.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_SUPPORT_RNG_H
#define DMLL_SUPPORT_RNG_H

#include <cstdint>

namespace dmll {

/// Deterministic xoshiro256** generator. Never seeded from the environment.
class Rng {
public:
  /// Creates a generator from a 64-bit seed via splitmix64 expansion.
  explicit Rng(uint64_t Seed);

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// Uniform double in [0, 1).
  double nextDouble();

  /// Standard normal variate (Box-Muller).
  double nextGaussian();

private:
  uint64_t State[4];
  bool HasSpare = false;
  double Spare = 0.0;
};

} // namespace dmll

#endif // DMLL_SUPPORT_RNG_H
