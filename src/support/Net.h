//===- support/Net.h - Loopback socket helpers -----------------*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one socket layer in the repo: small, crash-proof helpers shared by
/// the telemetry endpoint (observe/LiveTelemetry.h) and the query daemon
/// (service/Serve.h, docs/SERVICE.md). Everything here is loopback-only TCP
/// and designed for long-lived processes, so the failure modes that would
/// take a daemon down are handled at this layer once:
///
///  * sendAll uses `send(..., MSG_NOSIGNAL)` and retries EINTR — a client
///    that disconnects mid-response yields a clean `false`, never SIGPIPE.
///  * listenLoopback accepts Port == 0 and reports the kernel-assigned
///    ephemeral port, so parallel test runs never race on a fixed port.
///  * drainRequest reads (bounded, poll-driven) whatever the client sent
///    before the server responds and closes — closing a socket with unread
///    bytes in the receive buffer can emit RST and make well-behaved
///    clients (curl, Prometheus scrapers) discard the already-sent body.
///
/// No helper throws; every failure is a false/-1 return the caller can log
/// and survive.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_SUPPORT_NET_H
#define DMLL_SUPPORT_NET_H

#include <cstddef>
#include <string>

namespace dmll {
namespace net {

/// Writes all \p Len bytes to \p Fd with send(MSG_NOSIGNAL), retrying
/// EINTR. Returns false on any other error (e.g. EPIPE from a client that
/// went away) — never raises SIGPIPE. Falls back to write() on a non-socket
/// fd so the same framing works over a stdio pipe.
bool sendAll(int Fd, const void *Data, size_t Len);
bool sendAll(int Fd, const std::string &Data);

/// Reads exactly \p Len bytes, retrying EINTR. False on EOF or error.
bool recvAll(int Fd, void *Data, size_t Len);

/// Creates a listening TCP socket on 127.0.0.1:\p Port (SO_REUSEADDR,
/// backlog \p Backlog). \p Port == 0 binds an ephemeral port. On success
/// returns the fd and stores the actually-bound port in \p BoundPort (when
/// non-null); on failure returns -1.
int listenLoopback(int Port, int Backlog, int *BoundPort = nullptr);

/// Connects to 127.0.0.1:\p Port; returns the fd or -1.
int connectLoopback(int Port);

/// Drains whatever request the peer sent on \p Fd before the caller writes
/// its response: polls for readability and reads until a blank line ends an
/// HTTP-style header block, EOF, \p MaxBytes read, or \p TimeoutMs spent.
/// Returns the bytes read (possibly empty). Never blocks longer than the
/// timeout and never fails — a misbehaving peer just yields fewer bytes.
std::string drainRequest(int Fd, size_t MaxBytes = 4096, int TimeoutMs = 100);

/// Polls \p Fd for readability; true when a read would not block.
bool pollIn(int Fd, int TimeoutMs);

} // namespace net
} // namespace dmll

#endif // DMLL_SUPPORT_NET_H
