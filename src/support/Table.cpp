//===- support/Table.cpp --------------------------------------*- C++ -*-===//

#include "support/Table.h"

#include <cassert>
#include <cstdio>

using namespace dmll;

Table::Table(std::vector<std::string> Hdrs) : Headers(std::move(Hdrs)) {}

void Table::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Headers.size() && "row arity mismatch");
  Rows.push_back(std::move(Cells));
}

std::string Table::render() const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t C = 0; C < Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      if (Row[C].size() > Widths[C])
        Widths[C] = Row[C].size();

  auto emitRow = [&](const std::vector<std::string> &Row, std::string &Out) {
    for (size_t C = 0; C < Row.size(); ++C) {
      Out += Row[C];
      if (C + 1 < Row.size())
        Out.append(Widths[C] - Row[C].size() + 2, ' ');
    }
    Out += '\n';
  };

  std::string Out;
  emitRow(Headers, Out);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  Out.append(Total > 2 ? Total - 2 : Total, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    emitRow(Row, Out);
  return Out;
}

std::string Table::fmt(double V, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, V);
  return Buf;
}

std::string Table::fmtX(double V, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*fx", Digits, V);
  return Buf;
}
