//===- support/Table.h - Aligned text tables for benchmark output -*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny column-aligned table printer used by every benchmark binary to
/// print the rows/series that match the paper's tables and figures.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_SUPPORT_TABLE_H
#define DMLL_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace dmll {

/// Accumulates rows of string cells and renders them with aligned columns.
class Table {
public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> Headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table (headers, separator, rows) as a string.
  std::string render() const;

  /// Formats \p V with \p Digits fractional digits.
  static std::string fmt(double V, int Digits = 2);

  /// Formats \p V as a speedup like "3.1x".
  static std::string fmtX(double V, int Digits = 1);

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace dmll

#endif // DMLL_SUPPORT_TABLE_H
