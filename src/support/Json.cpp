//===- support/Json.cpp ----------------------------------------*- C++ -*-===//

#include "support/Json.h"

#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace dmll;
using namespace dmll::json;

namespace {

class Parser {
public:
  explicit Parser(const std::string &S) : S(S) {}

  bool parseDoc(JValue &Out) {
    skipWs();
    if (!value(Out))
      return false;
    skipWs();
    return Pos == S.size(); // no trailing garbage
  }

private:
  const std::string &S;
  size_t Pos = 0;

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool lit(const char *L, JValue &Out, JValue::Kind K, bool B) {
    size_t N = std::strlen(L);
    if (S.compare(Pos, N, L) != 0)
      return false;
    Pos += N;
    Out.K = K;
    Out.B = B;
    return true;
  }

  /// Consumes exactly four hex digits into \p V; false on any non-hex char.
  bool hex4(unsigned &V) {
    if (Pos + 4 > S.size())
      return false;
    V = 0;
    for (int I = 0; I < 4; ++I) {
      char C = S[Pos + I];
      unsigned D;
      if (C >= '0' && C <= '9')
        D = static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        D = static_cast<unsigned>(C - 'a') + 10;
      else if (C >= 'A' && C <= 'F')
        D = static_cast<unsigned>(C - 'A') + 10;
      else
        return false;
      V = V * 16 + D;
    }
    Pos += 4;
    return true;
  }

  static void appendUtf8(std::string &Out, unsigned CP) {
    if (CP < 0x80) {
      Out += static_cast<char>(CP);
    } else if (CP < 0x800) {
      Out += static_cast<char>(0xC0 | (CP >> 6));
      Out += static_cast<char>(0x80 | (CP & 0x3F));
    } else if (CP < 0x10000) {
      Out += static_cast<char>(0xE0 | (CP >> 12));
      Out += static_cast<char>(0x80 | ((CP >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (CP & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (CP >> 18));
      Out += static_cast<char>(0x80 | ((CP >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((CP >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (CP & 0x3F));
    }
  }

  bool string(std::string &Out) {
    if (Pos >= S.size() || S[Pos] != '"')
      return false;
    ++Pos;
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\') {
        if (Pos + 1 >= S.size())
          return false;
        char C = S[Pos + 1];
        if (C == 'u') {
          Pos += 2;
          unsigned CP;
          if (!hex4(CP))
            return false;
          if (CP >= 0xD800 && CP <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (Pos + 1 >= S.size() || S[Pos] != '\\' || S[Pos + 1] != 'u')
              return false;
            Pos += 2;
            unsigned Lo;
            if (!hex4(Lo) || Lo < 0xDC00 || Lo > 0xDFFF)
              return false;
            CP = 0x10000 + ((CP - 0xD800) << 10) + (Lo - 0xDC00);
          } else if (CP >= 0xDC00 && CP <= 0xDFFF) {
            return false; // lone low surrogate
          }
          appendUtf8(Out, CP);
          continue;
        }
        if (!std::strchr("\"\\/bfnrt", C))
          return false;
        Out += C == 'b'   ? '\b'
               : C == 'f' ? '\f'
               : C == 'n' ? '\n'
               : C == 'r' ? '\r'
               : C == 't' ? '\t'
                          : C;
        Pos += 2;
        continue;
      }
      Out += S[Pos++];
    }
    if (Pos >= S.size())
      return false;
    ++Pos; // closing quote
    return true;
  }

  bool number(JValue &Out) {
    size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '+' || S[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return false;
    Out.K = JValue::Number;
    try {
      Out.Num = std::stod(S.substr(Start, Pos - Start));
    } catch (...) {
      return false;
    }
    return true;
  }

  bool value(JValue &Out) {
    skipWs();
    if (Pos >= S.size())
      return false;
    char C = S[Pos];
    if (C == 'n')
      return lit("null", Out, JValue::Null, false);
    if (C == 't')
      return lit("true", Out, JValue::Bool, true);
    if (C == 'f')
      return lit("false", Out, JValue::Bool, false);
    if (C == '"') {
      Out.K = JValue::String;
      return string(Out.Str);
    }
    if (C == '[') {
      ++Pos;
      Out.K = JValue::Array;
      skipWs();
      if (Pos < S.size() && S[Pos] == ']') {
        ++Pos;
        return true;
      }
      for (;;) {
        JValue V;
        if (!value(V))
          return false;
        Out.Arr.push_back(std::move(V));
        skipWs();
        if (Pos < S.size() && S[Pos] == ',') {
          ++Pos;
          continue;
        }
        break;
      }
      if (Pos >= S.size() || S[Pos] != ']')
        return false;
      ++Pos;
      return true;
    }
    if (C == '{') {
      ++Pos;
      Out.K = JValue::Object;
      skipWs();
      if (Pos < S.size() && S[Pos] == '}') {
        ++Pos;
        return true;
      }
      for (;;) {
        skipWs();
        std::string Key;
        if (!string(Key))
          return false;
        skipWs();
        if (Pos >= S.size() || S[Pos] != ':')
          return false;
        ++Pos;
        JValue V;
        if (!value(V))
          return false;
        Out.Obj.emplace_back(std::move(Key), std::move(V));
        skipWs();
        if (Pos < S.size() && S[Pos] == ',') {
          ++Pos;
          continue;
        }
        break;
      }
      if (Pos >= S.size() || S[Pos] != '}')
        return false;
      ++Pos;
      return true;
    }
    return number(Out);
  }
};

} // namespace

bool dmll::json::parse(const std::string &S, JValue &Out) {
  return Parser(S).parseDoc(Out);
}

bool dmll::json::parseFile(const std::string &Path, JValue &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  return parse(SS.str(), Out);
}
