//===- support/Json.h - Minimal JSON parser --------------------*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON reader for the machine-readable documents
/// this repo produces itself: Chrome traces (observe/Trace.h), benchmark
/// records (bench/bench_json.h), and execution profiles
/// (runtime/ProfileJson.h). tools/dmll-prof diffs profiles through it and
/// the observability tests round-trip every exporter through it, so a
/// document that parses here is one our own tools can consume.
///
/// Strict enough for the purpose (rejects trailing garbage, malformed
/// escapes, unterminated containers), not a validator: numbers use std::stod
/// semantics. \uXXXX escapes decode to UTF-8, including surrogate pairs;
/// lone surrogates and non-hex digits are rejected as malformed.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_SUPPORT_JSON_H
#define DMLL_SUPPORT_JSON_H

#include <string>
#include <utility>
#include <vector>

namespace dmll {
namespace json {

/// One parsed JSON value; containers own their children by value.
struct JValue {
  enum Kind { Null, Bool, Number, String, Array, Object } K = Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JValue> Arr;
  std::vector<std::pair<std::string, JValue>> Obj;

  /// First field of an Object with key \p Key, or nullptr.
  const JValue *field(const std::string &Key) const {
    for (const auto &[F, V] : Obj)
      if (F == Key)
        return &V;
    return nullptr;
  }

  /// field(Key)->Num if present and numeric, else \p Default.
  double numField(const std::string &Key, double Default = 0) const {
    const JValue *V = field(Key);
    return V && V->K == Number ? V->Num : Default;
  }

  /// field(Key)->Str if present and a string, else "".
  std::string strField(const std::string &Key) const {
    const JValue *V = field(Key);
    return V && V->K == String ? V->Str : std::string();
  }
};

/// Parses \p S into \p Out; false on any syntax error or trailing garbage.
bool parse(const std::string &S, JValue &Out);

/// Reads and parses a whole file; false on I/O or parse failure.
bool parseFile(const std::string &Path, JValue &Out);

} // namespace json
} // namespace dmll

#endif // DMLL_SUPPORT_JSON_H
