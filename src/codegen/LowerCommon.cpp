//===- codegen/LowerCommon.cpp ---------------------------------*- C++ -*-===//

#include "codegen/LowerCommon.h"

#include "ir/Builder.h"
#include "ir/Traversal.h"

#include <functional>

using namespace dmll;

lower::ScalarKind lower::scalarKindOf(const Type &Ty) {
  switch (Ty.getKind()) {
  case TypeKind::Bool:
    return ScalarKind::I1;
  case TypeKind::Int32:
  case TypeKind::Int64:
    return ScalarKind::I64;
  case TypeKind::Float32:
  case TypeKind::Float64:
    return ScalarKind::F64;
  case TypeKind::Array:
  case TypeKind::Struct:
    return ScalarKind::NotScalar;
  }
  return ScalarKind::NotScalar;
}

const char *lower::scalarKindName(ScalarKind K) {
  switch (K) {
  case ScalarKind::I1:
    return "i1";
  case ScalarKind::I64:
    return "i64";
  case ScalarKind::F64:
    return "f64";
  case ScalarKind::NotScalar:
    return "non-scalar";
  }
  return "non-scalar";
}

bool lower::isScalarAddReduce(const Func &R) {
  if (!R.isSet() || R.arity() != 2 || !R.Body->type()->isScalar())
    return false;
  const auto *Add = dyn_cast<BinOpExpr>(R.Body);
  if (!Add || Add->op() != BinOpKind::Add)
    return false;
  const auto *L = dyn_cast<SymExpr>(Add->lhs());
  const auto *Rr = dyn_cast<SymExpr>(Add->rhs());
  if (!L || !Rr)
    return false;
  uint64_t A = R.Params[0]->id(), B = R.Params[1]->id();
  return (L->id() == A && Rr->id() == B) || (L->id() == B && Rr->id() == A);
}

bool lower::isBoundedGatherLoop(const ExprRef &E) {
  const auto *ML = dyn_cast<MultiloopExpr>(E);
  if (!ML || !ML->isSingle())
    return false;
  const Generator &G = ML->gen();
  if (G.Kind != GenKind::Collect || !isTrueCond(G.Cond) || G.Key.isSet())
    return false;
  if (!G.Value.isSet() || G.Value.arity() != 1)
    return false;
  if (mayTrap(ML->size()))
    return false;
  uint64_t Idx = G.Value.Params[0]->id();

  // Arrays whose length bounds the loop: leaves of the size's Min-chain.
  std::vector<ExprRef> Bounding;
  std::function<void(const ExprRef &)> Chain = [&](const ExprRef &S) {
    if (const auto *B = dyn_cast<BinOpExpr>(S); B && B->op() == BinOpKind::Min) {
      Chain(B->lhs());
      Chain(B->rhs());
      return;
    }
    if (const auto *L = dyn_cast<ArrayLenExpr>(S))
      Bounding.push_back(L->array());
  };
  Chain(ML->size());

  // The body may trap only through in-bounds reads: every ArrayRead must be
  // at exactly the loop index, from an index-invariant array whose length
  // bounds the loop; no integer division; no nested loops.
  bool Ok = true;
  visitAll(G.Value.Body, [&](const ExprRef &Node) {
    switch (Node->kind()) {
    case ExprKind::Multiloop:
    case ExprKind::LoopOut:
      Ok = false;
      return;
    case ExprKind::BinOp: {
      const auto *B = cast<BinOpExpr>(Node);
      if ((B->op() == BinOpKind::Div || B->op() == BinOpKind::Mod) &&
          B->type()->isInt())
        Ok = false;
      return;
    }
    case ExprKind::ArrayRead: {
      const auto *Rd = cast<ArrayReadExpr>(Node);
      const auto *S = dyn_cast<SymExpr>(Rd->index());
      if (!S || S->id() != Idx || freeSyms(Rd->array()).count(Idx) ||
          mayTrap(Rd->array())) {
        Ok = false;
        return;
      }
      bool Covered = false;
      for (const ExprRef &A : Bounding)
        Covered |= A.get() == Rd->array().get() ||
                   structuralEq(A, Rd->array());
      Ok &= Covered;
      return;
    }
    default:
      return;
    }
  });
  return Ok;
}
