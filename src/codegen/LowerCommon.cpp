//===- codegen/LowerCommon.cpp ---------------------------------*- C++ -*-===//

#include "codegen/LowerCommon.h"

using namespace dmll;

lower::ScalarKind lower::scalarKindOf(const Type &Ty) {
  switch (Ty.getKind()) {
  case TypeKind::Bool:
    return ScalarKind::I1;
  case TypeKind::Int32:
  case TypeKind::Int64:
    return ScalarKind::I64;
  case TypeKind::Float32:
  case TypeKind::Float64:
    return ScalarKind::F64;
  case TypeKind::Array:
  case TypeKind::Struct:
    return ScalarKind::NotScalar;
  }
  return ScalarKind::NotScalar;
}

const char *lower::scalarKindName(ScalarKind K) {
  switch (K) {
  case ScalarKind::I1:
    return "i1";
  case ScalarKind::I64:
    return "i64";
  case ScalarKind::F64:
    return "f64";
  case ScalarKind::NotScalar:
    return "non-scalar";
  }
  return "non-scalar";
}

bool lower::isScalarAddReduce(const Func &R) {
  if (!R.isSet() || R.arity() != 2 || !R.Body->type()->isScalar())
    return false;
  const auto *Add = dyn_cast<BinOpExpr>(R.Body);
  if (!Add || Add->op() != BinOpKind::Add)
    return false;
  const auto *L = dyn_cast<SymExpr>(Add->lhs());
  const auto *Rr = dyn_cast<SymExpr>(Add->rhs());
  if (!L || !Rr)
    return false;
  uint64_t A = R.Params[0]->id(), B = R.Params[1]->id();
  return (L->id() == A && Rr->id() == B) || (L->id() == B && Rr->id() == A);
}
