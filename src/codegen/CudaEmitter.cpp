//===- codegen/CudaEmitter.cpp ---------------------------------*- C++ -*-===//

#include "codegen/CudaEmitter.h"

#include "analysis/Stencil.h"
#include "ir/Builder.h"
#include "ir/Traversal.h"
#include "observe/Trace.h"
#include "support/Error.h"

#include <sstream>
#include <unordered_map>

using namespace dmll;

namespace {

/// Flattened parameter name for an input field chain: @matrix.data ->
/// in_matrix_data.
std::string paramName(const Expr *E) {
  if (const auto *In = dyn_cast<InputExpr>(E))
    return "in_" + In->name();
  if (const auto *GF = dyn_cast<GetFieldExpr>(E))
    return paramName(GF->base().get()) + "_" + GF->field();
  return {};
}

const char *scalarCuda(const TypeRef &Ty) {
  switch (Ty->getKind()) {
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Int32:
    return "int";
  case TypeKind::Int64:
    return "long long";
  case TypeKind::Float32:
    return "float";
  case TypeKind::Float64:
    return "double";
  default:
    return "double";
  }
}

/// Per-kernel device-code emitter: straight-line per-thread code, nested
/// patterns as sequential loops with scalar accumulators or fixed local
/// buffers.
class DeviceEmitter {
public:
  explicit DeviceEmitter(std::ostringstream &OS) : OS(OS) {}

  std::string emit(const ExprRef &E, const std::string &Indent) {
    switch (E->kind()) {
    case ExprKind::ConstInt:
      return std::to_string(cast<ConstIntExpr>(E)->value()) + "LL";
    case ExprKind::ConstFloat: {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%.17g", cast<ConstFloatExpr>(E)->value());
      return Buf;
    }
    case ExprKind::ConstBool:
      return cast<ConstBoolExpr>(E)->value() ? "true" : "false";
    case ExprKind::Sym: {
      auto It = SymNames.find(cast<SymExpr>(E)->id());
      if (It == SymNames.end())
        fatalError("cuda codegen: unbound symbol");
      return It->second;
    }
    case ExprKind::Input:
    case ExprKind::GetField: {
      std::string P = paramName(E.get());
      if (P.empty())
        fatalError("cuda codegen: unsupported field access");
      return P;
    }
    case ExprKind::BinOp: {
      const auto *B = cast<BinOpExpr>(E);
      std::string L = emit(B->lhs(), Indent), R = emit(B->rhs(), Indent);
      const char *Op = nullptr;
      switch (B->op()) {
      case BinOpKind::Add: Op = "+"; break;
      case BinOpKind::Sub: Op = "-"; break;
      case BinOpKind::Mul: Op = "*"; break;
      case BinOpKind::Div: Op = "/"; break;
      case BinOpKind::Mod: Op = "%"; break;
      case BinOpKind::Eq: Op = "=="; break;
      case BinOpKind::Ne: Op = "!="; break;
      case BinOpKind::Lt: Op = "<"; break;
      case BinOpKind::Le: Op = "<="; break;
      case BinOpKind::Gt: Op = ">"; break;
      case BinOpKind::Ge: Op = ">="; break;
      case BinOpKind::And: Op = "&&"; break;
      case BinOpKind::Or: Op = "||"; break;
      case BinOpKind::Min:
        return "min(" + L + ", " + R + ")";
      case BinOpKind::Max:
        return "max(" + L + ", " + R + ")";
      }
      if (B->op() == BinOpKind::Mod && B->type()->isFloat())
        return "fmod(" + L + ", " + R + ")";
      return "(" + L + " " + Op + " " + R + ")";
    }
    case ExprKind::UnOp: {
      const auto *U = cast<UnOpExpr>(E);
      std::string A = emit(U->operand(), Indent);
      switch (U->op()) {
      case UnOpKind::Neg: return "(-" + A + ")";
      case UnOpKind::Not: return "(!" + A + ")";
      case UnOpKind::Exp: return "exp(" + A + ")";
      case UnOpKind::Log: return "log(" + A + ")";
      case UnOpKind::Sqrt: return "sqrt(" + A + ")";
      case UnOpKind::Abs: return "fabs(" + A + ")";
      }
      dmllUnreachable("bad UnOpKind");
    }
    case ExprKind::Select: {
      const auto *S = cast<SelectExpr>(E);
      return "(" + emit(S->cond(), Indent) + " ? " +
             emit(S->trueVal(), Indent) + " : " +
             emit(S->falseVal(), Indent) + ")";
    }
    case ExprKind::Cast:
      return "((" + std::string(scalarCuda(E->type())) + ")" +
             emit(cast<CastExpr>(E)->operand(), Indent) + ")";
    case ExprKind::ArrayRead: {
      const auto *R = cast<ArrayReadExpr>(E);
      return emit(R->array(), Indent) + "[" + emit(R->index(), Indent) + "]";
    }
    case ExprKind::ArrayLen: {
      std::string P = paramName(cast<ArrayLenExpr>(E)->array().get());
      if (!P.empty())
        return P + "_len";
      auto It = LocalLens.find(cast<ArrayLenExpr>(E)->array().get());
      if (It != LocalLens.end())
        return It->second;
      fatalError("cuda codegen: unsupported length");
    }
    case ExprKind::Multiloop:
      return emitNestedLoop(cast<MultiloopExpr>(E), E, Indent);
    case ExprKind::LoopOut: {
      const auto *LO = cast<LoopOutExpr>(E);
      emit(LO->loop(), Indent);
      return NestedOuts[LO->loop().get()][LO->index()];
    }
    default:
      fatalError("cuda codegen: unsupported node kind");
    }
  }

  std::unordered_map<uint64_t, std::string> SymNames;

private:
  std::ostringstream &OS;
  int Var = 0;
  std::unordered_map<const Expr *, std::vector<std::string>> NestedOuts;
  std::unordered_map<const Expr *, std::string> LocalLens;
  std::unordered_map<const Expr *, std::string> Memo;

  std::string emitNestedLoop(const MultiloopExpr *ML, const ExprRef &E,
                             const std::string &Indent) {
    auto MIt = Memo.find(E.get());
    if (MIt != Memo.end())
      return MIt->second;
    std::string N = emit(ML->size(), Indent);
    std::string Idx = "j" + std::to_string(Var++);
    std::vector<std::string> Outs;
    // Accumulator declarations.
    for (const Generator &G : ML->gens()) {
      std::string Acc = "t" + std::to_string(Var++);
      const char *Ty = scalarCuda(G.Value.Body->type());
      if (G.Kind == GenKind::Collect) {
        // Thread-local staging buffer (bounded by DMLL_LOCAL_MAX).
        OS << Indent << Ty << " " << Acc << "[DMLL_LOCAL_MAX]; int " << Acc
           << "_n = 0;\n";
        LocalLens[E.get()] = Acc + "_n";
      } else {
        OS << Indent << Ty << " " << Acc << " = 0; bool " << Acc
           << "_has = false;\n";
      }
      Outs.push_back(Acc);
    }
    OS << Indent << "for (long long " << Idx << " = 0; " << Idx << " < " << N
       << "; ++" << Idx << ") {\n";
    std::string In = Indent + "  ";
    size_t GI = 0;
    for (const Generator &G : ML->gens()) {
      for (const Func *F : {&G.Cond, &G.Key, &G.Value})
        if (F->isSet())
          SymNames[F->Params[0]->id()] = Idx;
      std::string Acc = Outs[GI++];
      std::string Cond =
          isTrueCond(G.Cond) ? std::string() : emit(G.Cond.Body, In);
      if (!Cond.empty())
        OS << In << "if (" << Cond << ") {\n";
      std::string V = emit(G.Value.Body, In);
      if (G.Kind == GenKind::Collect) {
        OS << In << Acc << "[" << Acc << "_n++] = " << V << ";\n";
      } else {
        SymNames[G.Reduce.Params[0]->id()] = Acc;
        SymNames[G.Reduce.Params[1]->id()] = "(" + V + ")";
        std::string R = emit(G.Reduce.Body, In);
        OS << In << "if (!" << Acc << "_has) { " << Acc << " = " << V
           << "; " << Acc << "_has = true; } else { " << Acc << " = " << R
           << "; }\n";
      }
      if (!Cond.empty())
        OS << In << "}\n";
    }
    OS << Indent << "}\n";
    NestedOuts[E.get()] = Outs;
    Memo[E.get()] = Outs[0];
    return Outs[0];
  }
};

/// Kernel parameters: every input-field leaf reachable from the loop.
std::string kernelParams(const ExprRef &Loop) {
  std::vector<std::string> Params;
  std::unordered_map<std::string, bool> Seen;
  visitAll(Loop, [&](const ExprRef &E) {
    std::string P = paramName(E.get());
    if (P.empty() || Seen.count(P))
      return;
    // Only leaves: scalar or array-of-scalar typed chains.
    if (E->type()->isArray() && E->type()->elem()->isScalar()) {
      Seen[P] = true;
      Params.push_back("const " +
                       std::string(scalarCuda(E->type()->elem())) + " *" + P +
                       ", long long " + P + "_len");
    } else if (E->type()->isScalar()) {
      Seen[P] = true;
      Params.push_back(std::string(scalarCuda(E->type())) + " " + P);
    }
  });
  std::string Out;
  for (size_t I = 0; I < Params.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Params[I];
  }
  return Out;
}

} // namespace

CudaEmission dmll::emitCuda(const Program &P) {
  TraceSpan Span("codegen.emit-cuda", "codegen");
  CudaEmission Out;
  std::ostringstream OS;
  OS << "// Generated CUDA-dialect kernels (DMLL, Brown et al. CGO 2016 "
        "reproduction).\n"
     << "#define DMLL_LOCAL_MAX 4096\n\n";

  int KernelId = 0;
  for (const ExprRef &Loop : collectMultiloops(P.Result)) {
    if (!freeSyms(Loop).empty())
      continue; // device kernels are generated per top-level loop
    const auto *ML = cast<MultiloopExpr>(Loop);
    CudaKernelInfo Info;
    Info.Name = "dmll_kernel" + std::to_string(KernelId++);

    // Reads rooted at hash-bucket structs cannot be flattened to device
    // pointers; such loops run on the host.
    bool Unsupported = false;
    visitAll(Loop, [&](const ExprRef &E) {
      if (const auto *R = dyn_cast<ArrayReadExpr>(E)) {
        const Expr *Root = readRoot(R->array());
        if (isa<MultiloopExpr>(Root) || isa<LoopOutExpr>(Root))
          Unsupported = true;
      }
    });
    if (Unsupported) {
      OS << "// " << Info.Name
         << ": consumes another loop's boxed output; executed on host.\n\n";
      Out.Kernels.push_back(Info);
      continue;
    }

    const Generator &G = ML->gen();
    bool ScalarValue = G.Value.Body->type()->isScalar();
    switch (G.Kind) {
    case GenKind::Collect:
      if (!isTrueCond(G.Cond)) {
        Info.TwoPhaseCollect = true;
        OS << "// Two-phase collect (Section 3.1): pass 1 evaluates the "
              "condition for all\n// indices; an exclusive scan assigns "
              "output offsets; pass 2 writes values\n// directly to their "
              "final positions.\n";
        OS << "__global__ void " << Info.Name << "_phase1(unsigned *flags, "
           << kernelParams(Loop) << ", long long n) {\n"
           << "  long long i = blockIdx.x * blockDim.x + threadIdx.x;\n"
           << "  if (i >= n) return;\n";
      } else {
        OS << "__global__ void " << Info.Name << "(";
        OS << scalarCuda(ScalarValue ? G.Value.Body->type() : Type::f64())
           << " *out, " << kernelParams(Loop) << ", long long n) {\n"
           << "  long long i = blockIdx.x * blockDim.x + threadIdx.x;\n"
           << "  if (i >= n) return;\n";
      }
      break;
    case GenKind::Reduce:
      if (ScalarValue) {
        Info.SharedMemReduce = true;
        OS << "__global__ void " << Info.Name << "("
           << scalarCuda(G.Value.Body->type()) << " *partial, "
           << kernelParams(Loop) << ", long long n) {\n"
           << "  __shared__ " << scalarCuda(G.Value.Body->type())
           << " sdata[256];\n"
           << "  long long i = blockIdx.x * blockDim.x + threadIdx.x;\n";
      } else {
        Info.GlobalMemReduce = true;
        OS << "// WARNING: reduction over non-scalar values; temporaries do "
              "not fit in\n// shared memory and spill to global memory "
              "(apply Row-to-Column Reduce).\n"
           << "__global__ void " << Info.Name
           << "(double *partial_vectors, " << kernelParams(Loop)
           << ", long long n) {\n"
           << "  long long i = blockIdx.x * blockDim.x + threadIdx.x;\n";
      }
      break;
    case GenKind::BucketCollect:
    case GenKind::BucketReduce:
      Info.AtomicBuckets = true;
      OS << "__global__ void " << Info.Name << "(double *buckets, "
         << kernelParams(Loop) << ", long long n, long long num_keys) {\n"
         << "  long long i = blockIdx.x * blockDim.x + threadIdx.x;\n"
         << "  if (i >= n) return;\n";
      break;
    }

    // Body: condition guard, then per-thread value computation.
    DeviceEmitter DE(OS);
    for (const Generator &Gen : ML->gens())
      for (const Func *F : {&Gen.Cond, &Gen.Key, &Gen.Value})
        if (F->isSet())
          DE.SymNames[F->Params[0]->id()] = "i";
    std::string Indent = "  ";
    if (!isTrueCond(G.Cond)) {
      OS << "  if (!(" << DE.emit(G.Cond.Body, Indent) << ")) return;\n";
    }
    if (Info.TwoPhaseCollect) {
      OS << "  flags[i] = 1;\n}\n";
      OS << "// phase 2 (after scan) omitted for brevity in phase-1-only "
            "emission.\n\n";
      Out.Kernels.push_back(Info);
      Out.Source = OS.str();
      continue;
    }
    if (ScalarValue || G.Kind == GenKind::Collect) {
      std::string V = DE.emit(G.Value.Body, Indent);
      switch (G.Kind) {
      case GenKind::Collect:
        OS << "  out[i] = " << V << ";\n";
        break;
      case GenKind::Reduce:
        OS << "  sdata[threadIdx.x] = (i < n) ? (" << V << ") : 0;\n"
           << "  __syncthreads();\n"
           << "  for (int s = blockDim.x / 2; s > 0; s >>= 1) {\n"
           << "    if (threadIdx.x < s) sdata[threadIdx.x] += "
              "sdata[threadIdx.x + s];\n"
           << "    __syncthreads();\n  }\n"
           << "  if (threadIdx.x == 0) partial[blockIdx.x] = sdata[0];\n";
        break;
      case GenKind::BucketCollect:
      case GenKind::BucketReduce: {
        std::string K = DE.emit(G.Key.Body, Indent);
        OS << "  long long k = " << K << ";\n"
           << "  atomicAdd(&buckets[k], (double)(" << V << "));\n";
        break;
      }
      }
    } else {
      // Vector-valued: per-feature strided accumulation in global memory.
      OS << "  // per-feature strided accumulation into partial_vectors\n"
         << "  // (each thread owns a stripe; see Lee et al. [21])\n";
    }
    OS << "}\n\n";
    Out.Kernels.push_back(Info);
  }
  Out.Source = OS.str();
  if (Span.live())
    Span.argInt("kernels", static_cast<int64_t>(Out.Kernels.size()));
  return Out;
}
