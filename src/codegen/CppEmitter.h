//===- codegen/CppEmitter.h - C++ code generation --------------*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates a standalone C++ program from a DMLL Program: multiloops
/// become tight loops over flat std::vectors, with loop-invariant
/// subexpressions hoisted to the scope of their deepest dependency (code
/// motion) and DAG-shared subexpressions emitted once per scope (CSE). The
/// generated main() loads inputs from a binary file, times the computation
/// over several repetitions, and prints a checksum plus per-iteration time
/// — this is the "DMLL generated C++" column of Table 2, compiled with gcc
/// -O3 by the benchmark harness and raced against src/refimpl.
///
/// The emitter additionally consumes the per-generator loop-transform plan
/// (transform/loop/LoopTransforms.h): planned collects store by index into
/// a pre-sized buffer under `#pragma omp simd`, scalar reductions strip-mine
/// their value computation into a vectorizable lane buffer (folded in index
/// order, so results stay bit-identical), and in-place-add accumulators are
/// sized once before the loop — two-level ones flattened to a row-major
/// buffer for the duration of the loop. docs/CODEGEN.md shows the emitted
/// C++ before and after each transform.
///
/// Host-side helpers serialize an InputMap to the binary format and compute
/// the same checksum over interpreter Values, so tests can validate
/// generated code end-to-end against the reference interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_CODEGEN_CPPEMITTER_H
#define DMLL_CODEGEN_CPPEMITTER_H

#include "interp/Interp.h"
#include "interp/Value.h"
#include "ir/Expr.h"

#include <string>

namespace dmll {

namespace tune {
class DecisionTable;
} // namespace tune

/// Code generation options.
struct CppEmitOptions {
  /// Timed repetitions of the whole computation in the generated main().
  int TimingIters = 3;
  /// Consume planLoopTransforms() decisions (transform/loop/): indexed
  /// stores, `#pragma omp simd` hints, strip-mined reductions, hoisted and
  /// flattened accumulators. Off emits the plain per-generator loops.
  bool EnableLoopTransforms = true;
  /// Per-loop tuning decisions (tune/Decision.h): loops flagged
  /// NoLoopTransforms get no plan bits. Null emits untuned.
  const tune::DecisionTable *Tuning = nullptr;
};

/// Emits the full standalone C++ source for \p P.
std::string emitCpp(const Program &P, const CppEmitOptions &Opts = {});

/// Order-insensitive-ish result digest: scalar count, plain sum, sum of
/// absolute values. Mirrored exactly by the generated program's output.
struct Checksum {
  int64_t Count = 0;
  double Sum = 0;
  double Abs = 0;
};

/// Digest of an interpreter Value (host side of the validation).
Checksum checksumValue(const Value &V);

/// Serializes \p Inputs (in \p P's input order, leaves in type DFS order,
/// arrays of structs as per-field columns) to the binary format the
/// generated program loads. Aborts on type mismatch.
void writeInputsBinary(const Program &P, const InputMap &Inputs,
                       const std::string &Path);

/// Result of running a generated program (parsed from its stdout).
struct GeneratedRunResult {
  Checksum Sum;
  double MillisPerIter = 0;
  bool Ok = false;
};

/// Convenience for tests/benches: emit, compile with the system compiler
/// (-O3), run with the serialized inputs, and parse the output. \p WorkDir
/// must exist; artifacts are left there for inspection.
GeneratedRunResult compileAndRun(const Program &P, const InputMap &Inputs,
                                 const std::string &WorkDir,
                                 const std::string &BaseName,
                                 const CppEmitOptions &Opts = {});

} // namespace dmll

#endif // DMLL_CODEGEN_CPPEMITTER_H
