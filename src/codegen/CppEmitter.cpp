//===- codegen/CppEmitter.cpp ----------------------------------*- C++ -*-===//

#include "codegen/CppEmitter.h"

#include "codegen/LowerCommon.h"
#include "ir/Builder.h"
#include "ir/Traversal.h"
#include "observe/Trace.h"
#include "support/Error.h"
#include "transform/loop/LoopTransforms.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <sstream>
#include <unordered_map>

using namespace dmll;

namespace {

//===----------------------------------------------------------------------===//
// Emitter.
//===----------------------------------------------------------------------===//

class Emitter {
public:
  Emitter(const Program &P, const CppEmitOptions &Opts) : P(P), Opts(Opts) {
    if (Opts.EnableLoopTransforms)
      Plan = planLoopTransforms(P, {}, Opts.Tuning);
  }

  std::string run();

private:
  const Program &P;
  CppEmitOptions Opts;
  LoopTransformPlan Plan; ///< per-generator loop-transform decisions
  int VarCounter = 0;
  int StructCounter = 0;
  // Canonical type string -> generated struct name, in creation order.
  std::map<std::string, std::string> StructNames;
  std::vector<std::pair<std::string, TypeRef>> StructOrder;
  std::unordered_map<const Expr *, std::vector<uint64_t>> FreeCache;
  std::unordered_map<const Expr *, std::vector<std::string>> LoopOutVars;

  /// One emission scope: a statement sink plus symbol bindings. Statements
  /// of an expression go to the innermost scope binding one of its free
  /// symbols (code motion); a scope's Code is spliced into its parent once
  /// complete, so hoisted statements always precede the loop they were
  /// hoisted out of.
  struct Scope {
    Scope *Parent = nullptr;
    std::string Code;
    std::string Indent;
    std::unordered_map<const Expr *, std::string> Memo;
    std::unordered_map<uint64_t, std::string> SymNames;

    bool binds(uint64_t Id) const { return SymNames.count(Id) != 0; }
    const std::string *lookup(uint64_t Id) const {
      for (const Scope *S = this; S; S = S->Parent) {
        auto It = S->SymNames.find(Id);
        if (It != S->SymNames.end())
          return &It->second;
      }
      return nullptr;
    }
  };

  std::string fresh(const char *Prefix) {
    return std::string(Prefix) + std::to_string(VarCounter++);
  }

  const std::vector<uint64_t> &freeOf(const ExprRef &E) {
    auto It = FreeCache.find(E.get());
    if (It != FreeCache.end())
      return It->second;
    auto S = freeSyms(E);
    return FreeCache.emplace(E.get(), std::vector<uint64_t>(S.begin(), S.end()))
        .first->second;
  }

  Scope &targetScope(const ExprRef &E, Scope &Cur) {
    const auto &Free = freeOf(E);
    Scope *S = &Cur;
    while (S->Parent) {
      for (uint64_t Id : Free)
        if (S->binds(Id))
          return *S;
      S = S->Parent;
    }
    return *S;
  }

  /// Memoized name for \p E visible from \p From: its own entry or any
  /// ancestor's (a value emitted in an enclosing scope is in scope here;
  /// one emitted in a sibling block is not).
  const std::string *findMemo(const Expr *E, Scope &From) {
    for (Scope *S = &From; S; S = S->Parent) {
      auto It = S->Memo.find(E);
      if (It != S->Memo.end())
        return &It->second;
    }
    return nullptr;
  }

  /// C++ type for \p Ty, registering generated struct types on demand.
  std::string cType(const TypeRef &Ty) {
    switch (Ty->getKind()) {
    case TypeKind::Bool:
      return "bool";
    case TypeKind::Int32:
      return "int32_t";
    case TypeKind::Int64:
      return "int64_t";
    case TypeKind::Float32:
      return "float";
    case TypeKind::Float64:
      return "double";
    case TypeKind::Array:
      return "std::vector<" + cType(Ty->elem()) + ">";
    case TypeKind::Struct: {
      std::string Key = Ty->str();
      auto It = StructNames.find(Key);
      if (It != StructNames.end())
        return It->second;
      // Register fields first so nested structs are defined before use.
      for (const Type::Field &F : Ty->fields())
        (void)cType(F.Ty);
      std::string Name = "S" + std::to_string(StructCounter++);
      StructNames.emplace(Key, Name);
      StructOrder.push_back({Name, Ty});
      return Name;
    }
    }
    dmllUnreachable("bad TypeKind");
  }

  static std::string litFloat(double V) {
    if (std::isinf(V))
      return V > 0 ? "INFINITY" : "(-INFINITY)";
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.17g", V);
    std::string S(Buf);
    if (S.find('.') == std::string::npos &&
        S.find('e') == std::string::npos && S.find("INF") == std::string::npos)
      S += ".0";
    return S;
  }

  void stmt(Scope &S, const std::string &Line) {
    S.Code += S.Indent + Line + "\n";
  }

  /// Binds an expression to a fresh const variable in its target scope.
  std::string define(const ExprRef &E, Scope &Cur, const std::string &Init) {
    Scope &T = targetScope(E, Cur);
    if (const std::string *Name = findMemo(E.get(), T))
      return *Name;
    std::string Name = fresh("x");
    stmt(T, "const " + cType(E->type()) + " " + Name + " = " + Init + ";");
    T.Memo.emplace(E.get(), Name);
    return Name;
  }

  std::string emitBinOp(const BinOpExpr *B, Scope &Cur) {
    std::string L = emit(B->lhs(), Cur), R = emit(B->rhs(), Cur);
    std::string Ty = cType(B->type());
    auto C = [&](const std::string &X) { return "(" + Ty + ")(" + X + ")"; };
    switch (B->op()) {
    case BinOpKind::Add:
      return C(L) + " + " + C(R);
    case BinOpKind::Sub:
      return C(L) + " - " + C(R);
    case BinOpKind::Mul:
      return C(L) + " * " + C(R);
    case BinOpKind::Div:
      return C(L) + " / " + C(R);
    case BinOpKind::Mod:
      return B->type()->isFloat() ? "std::fmod(" + C(L) + ", " + C(R) + ")"
                                  : C(L) + " % " + C(R);
    case BinOpKind::Min:
      return "std::min<" + Ty + ">(" + L + ", " + R + ")";
    case BinOpKind::Max:
      return "std::max<" + Ty + ">(" + L + ", " + R + ")";
    case BinOpKind::Eq:
      return "(" + L + ") == (" + R + ")";
    case BinOpKind::Ne:
      return "(" + L + ") != (" + R + ")";
    case BinOpKind::Lt:
      return "(" + L + ") < (" + R + ")";
    case BinOpKind::Le:
      return "(" + L + ") <= (" + R + ")";
    case BinOpKind::Gt:
      return "(" + L + ") > (" + R + ")";
    case BinOpKind::Ge:
      return "(" + L + ") >= (" + R + ")";
    case BinOpKind::And:
      return "(" + L + ") && (" + R + ")";
    case BinOpKind::Or:
      return "(" + L + ") || (" + R + ")";
    }
    dmllUnreachable("bad BinOpKind");
  }

  std::string emitUnOp(const UnOpExpr *U, Scope &Cur) {
    std::string A = emit(U->operand(), Cur);
    switch (U->op()) {
    case UnOpKind::Neg:
      return "-(" + A + ")";
    case UnOpKind::Not:
      return "!(" + A + ")";
    case UnOpKind::Exp:
      return "std::exp((double)(" + A + "))";
    case UnOpKind::Log:
      return "std::log((double)(" + A + "))";
    case UnOpKind::Sqrt:
      return "std::sqrt((double)(" + A + "))";
    case UnOpKind::Abs:
      return U->type()->isFloat() ? "std::fabs(" + A + ")"
                                  : "std::llabs(" + A + ")";
    }
    dmllUnreachable("bad UnOpKind");
  }

  /// Emits \p E and returns a C++ expression (a variable name for anything
  /// non-trivial).
  std::string emit(const ExprRef &E, Scope &Cur) {
    switch (E->kind()) {
    case ExprKind::ConstInt:
      return "INT64_C(" + std::to_string(cast<ConstIntExpr>(E)->value()) +
             ")";
    case ExprKind::ConstFloat:
      return litFloat(cast<ConstFloatExpr>(E)->value());
    case ExprKind::ConstBool:
      return cast<ConstBoolExpr>(E)->value() ? "true" : "false";
    case ExprKind::Sym: {
      const std::string *Name = Cur.lookup(cast<SymExpr>(E)->id());
      if (!Name)
        fatalError("codegen: unbound symbol " + cast<SymExpr>(E)->name());
      return *Name;
    }
    case ExprKind::Input:
      return "in_" + cast<InputExpr>(E)->name();
    case ExprKind::BinOp:
      return define(E, Cur, emitBinOp(cast<BinOpExpr>(E), Cur));
    case ExprKind::UnOp:
      return define(E, Cur, emitUnOp(cast<UnOpExpr>(E), Cur));
    case ExprKind::Select: {
      const auto *S = cast<SelectExpr>(E);
      // Note: operands are emitted as (possibly hoisted) values, so both
      // arms are evaluated; generated arms must be trap-free (pure pattern
      // code is).
      std::string C = emit(S->cond(), Cur);
      std::string T = emit(S->trueVal(), Cur);
      std::string F = emit(S->falseVal(), Cur);
      if (E->type()->isStruct()) {
        // A whole-struct ternary compiles to stack stores that keep the
        // value out of registers across loop iterations (the k-means
        // argmin accumulator ran ~35% slower than the hand-written
        // two-register form because of this — docs/CODEGEN.md). Selecting
        // each field yields per-field cmovs instead.
        std::string Init = cType(E->type()) + "{";
        for (size_t I = 0; I < E->type()->fields().size(); ++I) {
          const Type::Field &Fl = E->type()->fields()[I];
          if (I)
            Init += ", ";
          Init += "(" + C + ") ? (" + T + "." + Fl.Name + ") : (" + F +
                  "." + Fl.Name + ")";
        }
        return define(E, Cur, Init + "}");
      }
      return define(E, Cur, "(" + C + ") ? (" + T + ") : (" + F + ")");
    }
    case ExprKind::Cast: {
      const auto *C = cast<CastExpr>(E);
      std::string A = emit(C->operand(), Cur);
      if (E->type()->isBool())
        return define(E, Cur, "(" + A + ") != 0");
      return define(E, Cur, "(" + cType(E->type()) + ")(" + A + ")");
    }
    case ExprKind::ArrayRead: {
      const auto *R = cast<ArrayReadExpr>(E);
      std::string Arr = emit(R->array(), Cur);
      std::string Idx = emit(R->index(), Cur);
      return define(E, Cur, Arr + "[(size_t)(" + Idx + ")]");
    }
    case ExprKind::ArrayLen:
      return define(E, Cur,
                    "(int64_t)" + emit(cast<ArrayLenExpr>(E)->array(), Cur) +
                        ".size()");
    case ExprKind::MakeStruct: {
      std::string Init = cType(E->type()) + "{";
      for (size_t I = 0; I < E->ops().size(); ++I) {
        if (I)
          Init += ", ";
        Init += emit(E->ops()[I], Cur);
      }
      return define(E, Cur, Init + "}");
    }
    case ExprKind::GetField: {
      const auto *G = cast<GetFieldExpr>(E);
      return emit(G->base(), Cur) + "." + G->field();
    }
    case ExprKind::Flatten:
      return emitFlatten(cast<FlattenExpr>(E), E, Cur);
    case ExprKind::Multiloop:
      return emitLoop(cast<MultiloopExpr>(E), E, Cur);
    case ExprKind::LoopOut: {
      const auto *LO = cast<LoopOutExpr>(E);
      emit(LO->loop(), Cur); // ensure the loop is materialized
      auto It = LoopOutVars.find(LO->loop().get());
      assert(It != LoopOutVars.end() && It->second.size() > LO->index());
      return It->second[LO->index()];
    }
    }
    dmllUnreachable("bad ExprKind");
  }

  std::string emitFlatten(const FlattenExpr *F, const ExprRef &E,
                          Scope &Cur) {
    Scope &T = targetScope(E, Cur);
    if (const std::string *Name = findMemo(E.get(), T))
      return *Name;
    std::string Arr = emit(F->array(), Cur);
    std::string Out = fresh("flat");
    stmt(T, cType(E->type()) + " " + Out + ";");
    stmt(T, "for (const auto &inner_ : " + Arr + ")");
    stmt(T, "  " + Out + ".insert(" + Out + ".end(), inner_.begin(), " +
                "inner_.end());");
    T.Memo.emplace(E.get(), Out);
    return Out;
  }

  /// True when \p R is the scalar addition (a, b) => a + b: the accumulator
  /// can start at 0 with no first-element flag, letting the compiler
  /// vectorize the reduction loop. Shared with the kernel engine.
  static bool isScalarAdd(const Func &R) { return lower::isScalarAddReduce(R); }

  /// In-place vector accumulation: a (Bucket)Reduce over array values whose
  /// value is a Collect and whose reduction is elementwise addition can
  /// accumulate `acc[k] += f(k)` directly, with no per-iteration vector
  /// allocations — the "aggressive buffer reuse" hand-optimized code does
  /// (Section 6). Returns the chain of Collect levels (1 or 2 deep), or
  /// empty if the shape does not match.
  std::vector<const MultiloopExpr *> matchInPlaceAdd(const Generator &Gen) {
    std::vector<const MultiloopExpr *> Levels;
    if (!Gen.isReduce() || Gen.Value.Body->type()->isScalar())
      return Levels;
    // Value side: nested trivial Collects.
    const Expr *Cur = Gen.Value.Body.get();
    TypeRef Ty = Gen.Value.Body->type();
    while (Ty->isArray() && Levels.size() < 2) {
      const auto *ML = dyn_cast<MultiloopExpr>(Cur);
      if (!ML || !ML->isSingle() || ML->gen().Kind != GenKind::Collect ||
          !isTrueCond(ML->gen().Cond))
        return {};
      Levels.push_back(ML);
      Cur = ML->gen().Value.Body.get();
      Ty = ML->gen().Value.Body->type();
    }
    if (!Ty->isScalar())
      return {};
    // Reduce side: elementwise addition at every array level.
    std::function<bool(const Func &, const ExprRef &, const ExprRef &,
                       const TypeRef &)>
        IsZipAdd = [&](const Func &R, const ExprRef &A, const ExprRef &B,
                       const TypeRef &VTy) -> bool {
      if (VTy->isScalar()) {
        // Direct scalar reduce function: body == a + b.
        const auto *Add = dyn_cast<BinOpExpr>(R.Body);
        if (!Add || Add->op() != BinOpKind::Add)
          return false;
        return (structuralEq(Add->lhs(), A) && structuralEq(Add->rhs(), B)) ||
               (structuralEq(Add->lhs(), B) && structuralEq(Add->rhs(), A));
      }
      const auto *ML = dyn_cast<MultiloopExpr>(R.Body);
      if (!ML || !ML->isSingle() || ML->gen().Kind != GenKind::Collect ||
          !isTrueCond(ML->gen().Cond))
        return false;
      const Func &V = ML->gen().Value;
      ExprRef K(V.Params[0]);
      ExprRef EA = arrayRead(A, K), EB = arrayRead(B, K);
      std::function<bool(const ExprRef &, const ExprRef &, const ExprRef &,
                         const TypeRef &)>
          Elementwise = [&](const ExprRef &Body, const ExprRef &RA,
                            const ExprRef &RB,
                            const TypeRef &ETy) -> bool {
        if (ETy->isScalar()) {
          const auto *Add = dyn_cast<BinOpExpr>(Body);
          if (!Add || Add->op() != BinOpKind::Add)
            return false;
          return (structuralEq(Add->lhs(), RA) &&
                  structuralEq(Add->rhs(), RB)) ||
                 (structuralEq(Add->lhs(), RB) &&
                  structuralEq(Add->rhs(), RA));
        }
        const auto *Inner = dyn_cast<MultiloopExpr>(Body);
        if (!Inner || !Inner->isSingle() ||
            Inner->gen().Kind != GenKind::Collect ||
            !isTrueCond(Inner->gen().Cond))
          return false;
        ExprRef K2(Inner->gen().Value.Params[0]);
        return Elementwise(Inner->gen().Value.Body, arrayRead(RA, K2),
                           arrayRead(RB, K2), ETy->elem());
      };
      return Elementwise(V.Body, EA, EB, VTy->elem());
    };
    if (!IsZipAdd(Gen.Reduce, ExprRef(Gen.Reduce.Params[0]),
                  ExprRef(Gen.Reduce.Params[1]), Gen.Value.Body->type()))
      return {};
    return Levels;
  }

  /// How the loop-transform plan modifies an in-place add (all defaults
  /// reproduce the untransformed emission).
  struct InPlaceOpts {
    bool SkipInit = false;   ///< accumulator pre-sized at the loop header
    std::string Flat;        ///< non-empty: accumulate into this flat buffer
    std::string FlatN2;      ///< emitted inner size (row stride of Flat)
    bool SimdInner = false;  ///< inner loop body is simd-safe
  };

  /// Emits the in-place accumulation `Target[k](+)= f(k)` for the matched
  /// Collect \p Levels (sizes first so an empty accumulator can be sized).
  void emitInPlaceAdd(const std::vector<const MultiloopExpr *> &Levels,
                      const std::string &Target, Scope &Blk,
                      const std::string &Guard, const InPlaceOpts &IP) {
    const MultiloopExpr *L1 = Levels[0];
    std::string N1 = emit(L1->size(), Blk);
    if (!IP.Flat.empty() && Levels.size() == 2) {
      // Flattened two-level accumulator: `Flat[k1 * n2 + k2] += v`. Both
      // scopes are built before any loop text so statements hoisted to the
      // k1 level land above the inner loop (the nested-vector path below
      // re-evaluates them per inner iteration).
      const MultiloopExpr *L2 = Levels[1];
      std::string K1 = fresh("k"), K2 = fresh("k");
      Scope Inner;
      Inner.Parent = &Blk;
      Inner.Indent = Guard + "  ";
      Inner.SymNames[L1->gen().Value.Params[0]->id()] = K1;
      Scope In2;
      In2.Parent = &Inner;
      In2.Indent = Inner.Indent + "  ";
      In2.SymNames[L2->gen().Value.Params[0]->id()] = K2;
      std::string V = emit(L2->gen().Value.Body, In2);
      Blk.Code += Guard + "for (int64_t " + K1 + " = 0; " + K1 + " < " + N1 +
                  "; ++" + K1 + ") {\n";
      Blk.Code += Inner.Code;
      if (IP.SimdInner)
        Blk.Code += Inner.Indent + "#pragma omp simd\n";
      Blk.Code += Inner.Indent + "for (int64_t " + K2 + " = 0; " + K2 +
                  " < " + IP.FlatN2 + "; ++" + K2 + ") {\n";
      Blk.Code += In2.Code;
      Blk.Code += In2.Indent + IP.Flat + "[(size_t)(" + K1 + " * " +
                  IP.FlatN2 + " + " + K2 + ")] += " + V + ";\n";
      Blk.Code += Inner.Indent + "}\n" + Guard + "}\n";
      return;
    }
    if (!IP.SkipInit)
      Blk.Code += Guard + "if (" + Target + ".empty()) " + Target +
                  ".resize((size_t)(" + N1 + "));\n";
    std::string K1 = fresh("k");
    Blk.Code += Guard + "for (int64_t " + K1 + " = 0; " + K1 + " < " + N1 +
                "; ++" + K1 + ") {\n";
    Scope Inner;
    Inner.Parent = &Blk;
    Inner.Indent = Guard + "  ";
    Inner.SymNames[L1->gen().Value.Params[0]->id()] = K1;
    if (Levels.size() == 1) {
      std::string V = emit(L1->gen().Value.Body, Inner);
      Inner.Code += Inner.Indent + Target + "[" + K1 + "] += " + V + ";\n";
    } else {
      const MultiloopExpr *L2 = Levels[1];
      std::string N2 = emit(L2->size(), Inner);
      Inner.Code += Inner.Indent + "if (" + Target + "[" + K1 +
                    "].empty()) " + Target + "[" + K1 + "].resize((size_t)(" +
                    N2 + "));\n";
      std::string K2 = fresh("k");
      Inner.Code += Inner.Indent + "for (int64_t " + K2 + " = 0; " + K2 +
                    " < " + N2 + "; ++" + K2 + ") {\n";
      Scope In2;
      In2.Parent = &Inner;
      In2.Indent = Inner.Indent + "  ";
      In2.SymNames[L2->gen().Value.Params[0]->id()] = K2;
      std::string V = emit(L2->gen().Value.Body, In2);
      In2.Code += In2.Indent + Target + "[" + K1 + "][" + K2 + "] += " + V +
                  ";\n";
      Inner.Code += In2.Code + Inner.Indent + "}\n";
    }
    Blk.Code += Inner.Code + Guard + "}\n";
  }

  /// Emits one multiloop; returns the use-name of output 0 and records all
  /// outputs in LoopOutVars.
  std::string emitLoop(const MultiloopExpr *ML, const ExprRef &E,
                       Scope &Cur) {
    Scope &T = targetScope(E, Cur);
    if (const std::string *Name = findMemo(E.get(), T))
      return *Name;

    std::string N = emit(ML->size(), Cur);
    std::string Idx = fresh("i");

    // Per-generator loop-transform decisions (nullptr: emit as before).
    const std::vector<GenLoopPlan> *Plans =
        Opts.EnableLoopTransforms ? Plan.plansFor(ML) : nullptr;
    auto planOf = [&](size_t G) { return Plans ? (*Plans)[G] : GenLoopPlan(); };

    // Accumulator declarations (into T, before the loop).
    struct GenState {
      std::string Result; // final use-name
      std::string Acc, Has, Keys, Vals, Map;
      std::string NumKeys;
      std::string ValTy;
      // Hoisted in-place-add accumulator state (HoistAccInit/FlattenAcc).
      bool HoistedInit = false;
      std::string Flat, FlatN1, FlatN2;
      bool SimdInner = false;
    };
    std::vector<GenState> States(ML->numGens());
    // Hash-bucket generators with alpha-equal key and condition share one
    // key lookup per iteration (one map probe feeds all Q1 aggregates).
    std::vector<int> SharedLeader(ML->numGens(), -1);
    for (size_t G = 0; G < ML->numGens(); ++G) {
      const Generator &Gen = ML->gen(G);
      if (!Gen.isBucket() || Gen.NumKeys)
        continue;
      for (size_t L = 0; L < G; ++L) {
        const Generator &Lead = ML->gen(L);
        if (Lead.isBucket() && !Lead.NumKeys && SharedLeader[L] < 0 &&
            funcEq(Gen.Key, Lead.Key) && funcEq(Gen.Cond, Lead.Cond)) {
          SharedLeader[G] = static_cast<int>(L);
          break;
        }
      }
    }
    for (size_t G = 0; G < ML->numGens(); ++G) {
      const Generator &Gen = ML->gen(G);
      GenState &St = States[G];
      St.ValTy = cType(Gen.Value.Body->type());
      switch (Gen.Kind) {
      case GenKind::Collect: {
        St.Acc = fresh("out");
        // Nested loops re-execute per outer iteration: declare the buffer
        // once at the function root and clear it here, so its capacity is
        // reused (the aggressive buffer reuse of hand-optimized code).
        Scope *Root = &T;
        while (Root->Parent)
          Root = Root->Parent;
        stmt(*Root, "std::vector<" + St.ValTy + "> " + St.Acc + ";");
        if (planOf(G).IndexedStore) {
          // Every iteration writes its slot (condition is trivially true):
          // size the buffer once and store by index, so the loop body has
          // no push_back bookkeeping and can take a simd hint.
          stmt(T, St.Acc + ".resize((size_t)(" + N + "));");
        } else {
          if (Root != &T)
            stmt(T, St.Acc + ".clear();");
          if (isTrueCond(Gen.Cond))
            stmt(T, St.Acc + ".reserve((size_t)(" + N + "));");
        }
        St.Result = St.Acc;
        break;
      }
      case GenKind::Reduce:
        St.Acc = fresh("acc");
        St.Has = fresh("has");
        stmt(T, St.ValTy + " " + St.Acc + "{};");
        stmt(T, "bool " + St.Has + " = false;");
        St.Result = St.Acc;
        if (planOf(G).HoistAccInit) {
          // Size the in-place-add accumulator once at the loop header
          // instead of checking emptiness per iteration. Only legal when
          // the level sizes are loop-invariant (resolvable at T) — and the
          // `N > 0` guard keeps an empty loop's accumulator empty, exactly
          // as the per-iteration path leaves it.
          auto Levels = matchInPlaceAdd(Gen);
          auto Resolvable = [&](const ExprRef &Sz) {
            for (uint64_t Id : freeOf(Sz))
              if (!T.lookup(Id))
                return false;
            return true;
          };
          if (!Levels.empty() && Resolvable(Levels[0]->size()) &&
              (Levels.size() == 1 ||
               (planOf(G).FlattenAcc && Resolvable(Levels[1]->size())))) {
            St.FlatN1 = emit(Levels[0]->size(), Cur);
            if (Levels.size() == 2) {
              // Two-level accumulator: accumulate into one flat row-major
              // buffer for the duration of the loop (materialized back
              // into the nested vector after the loop closes).
              St.FlatN2 = emit(Levels[1]->size(), Cur);
              St.Flat = fresh("flatacc");
              std::string ETy =
                  cType(Levels[1]->gen().Value.Body->type());
              stmt(T, "std::vector<" + ETy + "> " + St.Flat + ";");
              stmt(T, "if (" + N + " > 0) " + St.Flat +
                          ".assign((size_t)(" + St.FlatN1 +
                          ") * (size_t)(" + St.FlatN2 + "), " + ETy +
                          "{});");
              St.SimdInner =
                  simdSafeLoopBody(Levels[1]->gen().Value.Body,
                                   Levels[1]->gen().Value.Params[0]);
            } else {
              stmt(T, "if (" + N + " > 0) " + St.Acc + ".resize((size_t)(" +
                          St.FlatN1 + "));");
            }
            St.HoistedInit = true;
          }
        }
        break;
      case GenKind::BucketCollect:
      case GenKind::BucketReduce: {
        bool IsReduce = Gen.Kind == GenKind::BucketReduce;
        std::string Elem =
            IsReduce ? St.ValTy : "std::vector<" + St.ValTy + ">";
        St.Vals = fresh("buckets");
        if (Gen.NumKeys) {
          St.NumKeys = emit(Gen.NumKeys, Cur);
          stmt(T, "std::vector<" + Elem + "> " + St.Vals + "((size_t)(" +
                      St.NumKeys + "));");
          if (IsReduce) {
            St.Has = fresh("bhas");
            stmt(T, "std::vector<uint8_t> " + St.Has + "((size_t)(" +
                        St.NumKeys + "), 0);");
          }
          St.Result = St.Vals;
        } else if (SharedLeader[G] >= 0) {
          St.Map = States[static_cast<size_t>(SharedLeader[G])].Map;
          St.Keys = States[static_cast<size_t>(SharedLeader[G])].Keys;
          stmt(T, "std::vector<" + Elem + "> " + St.Vals + ";");
        } else {
          St.Map = fresh("kmap");
          St.Keys = fresh("keys");
          stmt(T, "DmllMap " + St.Map + ";");
          stmt(T, "std::vector<int64_t> " + St.Keys + ";");
          stmt(T, "std::vector<" + Elem + "> " + St.Vals + ";");
          // Result assembled after the loop.
        }
        break;
      }
      }
    }

    // Strip-mined scalar-add reduction (single generator): compute W values
    // into a lane buffer under `#pragma omp simd` — each lane writes its
    // own slot, so vectorizing is legal — then fold the lanes into the
    // accumulator sequentially in index order. The accumulation order is
    // exactly the plain loop's, so results stay bit-identical (floats
    // included); a scalar loop handles the tail.
    if (ML->numGens() == 1 && planOf(0).StripMine &&
        ML->gen().Kind == GenKind::Reduce && isTrueCond(ML->gen().Cond) &&
        isScalarAdd(ML->gen().Reduce)) {
      const Generator &Gen = ML->gen();
      GenState &St = States[0];
      const char *W = "8";
      std::string Lanes = fresh("lanes");
      std::string L = fresh("l"), L2 = fresh("l"), LI = fresh("li");
      // Build both bodies before any loop text so hoisted loop-invariant
      // statements land above the loops, in scope for both.
      Scope LaneS;
      LaneS.Parent = &T;
      LaneS.Indent = T.Indent + "    ";
      LaneS.SymNames[Gen.Value.Params[0]->id()] = LI;
      std::string V = emit(Gen.Value.Body, LaneS);
      Scope Tail;
      Tail.Parent = &T;
      Tail.Indent = T.Indent + "  ";
      Tail.SymNames[Gen.Value.Params[0]->id()] = Idx;
      std::string VT = emit(Gen.Value.Body, Tail);
      std::string BI = T.Indent + "  ";
      stmt(T, "int64_t " + Idx + " = 0;");
      stmt(T, "for (; " + Idx + " + " + W + " <= " + N + "; " + Idx +
                  " += " + W + ") {");
      T.Code += BI + St.ValTy + " " + Lanes + "[" + W + "];\n";
      T.Code += BI + "#pragma omp simd\n";
      T.Code += BI + "for (int " + L + " = 0; " + L + " < " + W + "; ++" +
                L + ") {\n";
      T.Code += LaneS.Indent + "const int64_t " + LI + " = " + Idx + " + " +
                L + ";\n";
      T.Code += LaneS.Code;
      T.Code += LaneS.Indent + Lanes + "[" + L + "] = " + V + ";\n";
      T.Code += BI + "}\n";
      T.Code += BI + "for (int " + L2 + " = 0; " + L2 + " < " + W + "; ++" +
                L2 + ") " + St.Acc + " += " + Lanes + "[" + L2 + "];\n";
      stmt(T, "}");
      stmt(T, "for (; " + Idx + " < " + N + "; ++" + Idx + ") {");
      T.Code += Tail.Code;
      T.Code += Tail.Indent + St.Acc + " += " + VT + ";\n";
      stmt(T, "}");
      LoopOutVars[ML] = {St.Result};
      T.Memo.emplace(E.get(), St.Result);
      return St.Result;
    }

    // Loop body.
    Scope Body;
    Body.Parent = &T;
    Body.Indent = T.Indent + "  ";
    for (const Generator &Gen : ML->gens())
      for (const Func *F : {&Gen.Cond, &Gen.Key, &Gen.Value})
        if (F->isSet())
          Body.SymNames[F->Params[0]->id()] = Idx;

    for (size_t G = 0; G < ML->numGens(); ++G) {
      if (SharedLeader[G] >= 0)
        continue; // emitted with its leader below
      // This generator plus any hash-bucket generators sharing its key.
      std::vector<size_t> Group{G};
      for (size_t M = G + 1; M < ML->numGens(); ++M)
        if (SharedLeader[M] == static_cast<int>(G))
          Group.push_back(M);
      const Generator &Gen = ML->gen(G);
      GenState &St = States[G];
      bool Trivial = isTrueCond(Gen.Cond);
      std::string CondUse =
          Trivial ? std::string() : emit(Gen.Cond.Body, Body);
      std::string Guard = Body.Indent;
      std::string Close;
      if (!Trivial) {
        stmt(Body, "if (" + CondUse + ") {");
        Guard += "  ";
        Close = Body.Indent + "}";
      }
      // Accumulation block. When a guard exists, the block re-binds the
      // loop index so value/key statements land inside the `if`; with a
      // trivial condition they go to the shared loop body, letting fused
      // generators share work (the inlined `assigned` of Fig. 5 is
      // computed once per index across the sum and count reduces).
      Scope Blk;
      Blk.Parent = &Body;
      Blk.Indent = Guard;
      if (!Trivial)
        for (size_t M : Group)
          for (const Func *F : {&ML->gen(M).Key, &ML->gen(M).Value})
            if (F->isSet())
              Blk.SymNames[F->Params[0]->id()] = Idx;

      auto emitReduceApply = [&](const Generator &RGen,
                                 const std::string &AccExpr,
                                 const std::string &NewExpr,
                                 const std::string &Indent) {
        Scope RS;
        RS.Parent = &Blk;
        RS.Indent = Indent;
        RS.SymNames[RGen.Reduce.Params[0]->id()] = AccExpr;
        RS.SymNames[RGen.Reduce.Params[1]->id()] = NewExpr;
        std::string R = emit(RGen.Reduce.Body, RS);
        return RS.Code + Indent + AccExpr + " = " + R + ";\n";
      };

      switch (Gen.Kind) {
      case GenKind::Collect: {
        std::string V = emit(Gen.Value.Body, Blk);
        if (planOf(G).IndexedStore)
          Blk.Code += Guard + St.Acc + "[(size_t)(" + Idx + ")] = " + V +
                      ";\n";
        else
          Blk.Code += Guard + St.Acc + ".push_back(" + V + ");\n";
        break;
      }
      case GenKind::Reduce: {
        auto Levels = matchInPlaceAdd(Gen);
        if (!Levels.empty()) {
          InPlaceOpts IP;
          IP.SkipInit = St.HoistedInit;
          IP.Flat = St.Flat;
          IP.FlatN2 = St.FlatN2;
          IP.SimdInner = St.SimdInner;
          emitInPlaceAdd(Levels, St.Acc, Blk, Guard, IP);
          break;
        }
        std::string V = emit(Gen.Value.Body, Blk);
        if (isScalarAdd(Gen.Reduce)) {
          Blk.Code += Guard + St.Acc + " += " + V + ";\n";
          break;
        }
        Blk.Code += Guard + "if (!" + St.Has + ") { " + St.Acc + " = " + V +
                    "; " + St.Has + " = true; } else {\n";
        Blk.Code += emitReduceApply(Gen, St.Acc, V, Guard + "  ");
        Blk.Code += Guard + "}\n";
        break;
      }
      case GenKind::BucketCollect:
      case GenKind::BucketReduce: {
        std::string Key = emit(Gen.Key.Body, Blk);
        std::string K = fresh("k");
        if (Gen.NumKeys) {
          bool IsReduce = Gen.Kind == GenKind::BucketReduce;
          auto Levels = IsReduce ? matchInPlaceAdd(Gen)
                                 : std::vector<const MultiloopExpr *>();
          if (!Levels.empty()) {
            Blk.Code += Guard + "const size_t " + K + " = (size_t)(" + Key +
                        ");\n";
            emitInPlaceAdd(Levels, St.Vals + "[" + K + "]", Blk, Guard,
                           InPlaceOpts());
            break;
          }
          std::string V = emit(Gen.Value.Body, Blk);
          Blk.Code += Guard + "const size_t " + K + " = (size_t)(" + Key +
                      ");\n";
          if (IsReduce && isScalarAdd(Gen.Reduce)) {
            Blk.Code += Guard + St.Vals + "[" + K + "] += " + V + ";\n";
          } else if (IsReduce) {
            Blk.Code += Guard + "if (!" + St.Has + "[" + K + "]) { " +
                        St.Vals + "[" + K + "] = " + V + "; " + St.Has +
                        "[" + K + "] = 1; } else {\n";
            Blk.Code += emitReduceApply(Gen, St.Vals + "[" + K + "]", V,
                                        Guard + "  ");
            Blk.Code += Guard + "}\n";
          } else {
            Blk.Code += Guard + St.Vals + "[" + K + "].push_back(" + V +
                        ");\n";
          }
          break;
        }
        // Hash mode: one probe for the whole group.
        std::string Ins = fresh("ins");
        std::string SlotV = fresh("slot");
        Blk.Code += Guard + "bool " + Ins + " = false;\n";
        Blk.Code += Guard + "const size_t " + SlotV + " = " + St.Map +
                    ".getOrInsert((int64_t)(" + Key + "), " + St.Keys +
                    ".size(), &" + Ins + ");\n";
        Blk.Code += Guard + "if (" + Ins + ") " + St.Keys +
                    ".push_back((int64_t)(" + Key + "));\n";
        for (size_t M : Group) {
          const Generator &MG = ML->gen(M);
          GenState &MSt = States[M];
          bool MReduce = MG.Kind == GenKind::BucketReduce;
          std::string V = emit(MG.Value.Body, Blk);
          Blk.Code += Guard + "if (" + Ins + ") {\n";
          if (MReduce)
            Blk.Code += Guard + "  " + MSt.Vals + ".push_back(" + V +
                        ");\n";
          else
            Blk.Code += Guard + "  " + MSt.Vals + ".emplace_back();\n" +
                        Guard + "  " + MSt.Vals + ".back().push_back(" + V +
                        ");\n";
          Blk.Code += Guard + "} else {\n";
          if (MReduce)
            Blk.Code += emitReduceApply(MG, MSt.Vals + "[" + SlotV + "]", V,
                                        Guard + "  ");
          else
            Blk.Code += Guard + "  " + MSt.Vals + "[" + SlotV +
                        "].push_back(" + V + ");\n";
          Blk.Code += Guard + "}\n";
        }
        break;
      }
      }
      Body.Code += Blk.Code;
      if (!Trivial)
        Body.Code += Close + "\n";
    }

    // The whole loop takes `#pragma omp simd` only when every generator is
    // a simd-safe indexed-store collect: iterations then write disjoint
    // slots with no push_back or reduction carried between them. (A reduce
    // under a plain simd pragma would license float reassociation.)
    bool LoopSimd = Plans != nullptr && ML->numGens() > 0;
    for (size_t G = 0; LoopSimd && G < ML->numGens(); ++G)
      LoopSimd = planOf(G).IndexedStore && planOf(G).SimdHint;
    if (LoopSimd)
      stmt(T, "#pragma omp simd");
    stmt(T, "for (int64_t " + Idx + " = 0; " + Idx + " < " + N + "; ++" +
                Idx + ") {");
    T.Code += Body.Code;
    stmt(T, "}");

    // Assemble results (hash buckets become {keys, values} structs).
    std::vector<std::string> Outs;
    for (size_t G = 0; G < ML->numGens(); ++G) {
      const Generator &Gen = ML->gen(G);
      GenState &St = States[G];
      if (!St.Flat.empty()) {
        // Materialize the flattened accumulator back into the nested
        // vector. When the loop ran zero iterations the flat buffer was
        // never sized, and the accumulator stays empty — same as the
        // untransformed emission.
        std::string R = fresh("r");
        stmt(T, "if (!" + St.Flat + ".empty()) {");
        stmt(T, "  " + St.Acc + ".resize((size_t)(" + St.FlatN1 + "));");
        stmt(T, "  for (int64_t " + R + " = 0; " + R + " < " + St.FlatN1 +
                    "; ++" + R + ")");
        stmt(T, "    " + St.Acc + "[(size_t)(" + R + ")].assign(" + St.Flat +
                    ".begin() + " + R + " * " + St.FlatN2 + ", " + St.Flat +
                    ".begin() + (" + R + " + 1) * " + St.FlatN2 + ");");
        stmt(T, "}");
      }
      if (Gen.isBucket() && !Gen.NumKeys) {
        std::string STy = cType(Gen.resultType());
        std::string Res = fresh("grp");
        stmt(T, STy + " " + Res + "{std::move(" + St.Keys + "), std::move(" +
                    St.Vals + ")};");
        St.Result = Res;
      }
      Outs.push_back(St.Result);
    }
    LoopOutVars[ML] = Outs;
    T.Memo.emplace(E.get(), Outs[0]);
    return Outs[0];
  }

  //===--------------------------------------------------------------------===//
  // Input loading / checksum / main().
  //===--------------------------------------------------------------------===//

  void emitLoadLeaf(std::ostringstream &OS, const std::string &Target,
                    const TypeRef &Ty) {
    if (Ty->isScalar()) {
      OS << "  rdScalar(f, " << Target << ");\n";
      return;
    }
    if (Ty->isArray() && Ty->elem()->isScalar()) {
      OS << "  rdArray(f, " << Target << ");\n";
      return;
    }
    if (Ty->isStruct()) {
      for (const Type::Field &F : Ty->fields())
        emitLoadLeaf(OS, Target + "." + F.Name, F.Ty);
      return;
    }
    if (Ty->isArray() && Ty->elem()->isStruct()) {
      // Columns per field, then assemble AoS.
      std::string Prefix = "col" + std::to_string(VarCounter++) + "_";
      const auto &Fields = Ty->elem()->fields();
      OS << "  {\n";
      for (size_t F = 0; F < Fields.size(); ++F) {
        OS << "    std::vector<" << cType(Fields[F].Ty) << "> " << Prefix
           << F << ";\n";
        OS << "    rdArray(f, " << Prefix << F << ");\n";
      }
      OS << "    " << Target << ".resize(" << Prefix << "0.size());\n";
      OS << "    for (size_t e = 0; e < " << Target << ".size(); ++e) "
         << Target << "[e] = " << cType(Ty->elem()) << "{";
      for (size_t F = 0; F < Fields.size(); ++F) {
        if (F)
          OS << ", ";
        OS << Prefix << F << "[e]";
      }
      OS << "};\n  }\n";
      return;
    }
    fatalError("codegen: unsupported input type " + Ty->str());
  }

  std::string emitStructDefs() {
    std::ostringstream OS;
    for (const auto &[Name, Ty] : StructOrder) {
      OS << "struct " << Name << " {\n";
      for (const Type::Field &F : Ty->fields())
        OS << "  " << cType(F.Ty) << " " << F.Name << ";\n";
      OS << "};\n";
    }
    // Checksum overloads for every struct.
    for (const auto &[Name, Ty] : StructOrder)
      OS << "static void chk(const " << Name << " &, Acc &);\n";
    for (const auto &[Name, Ty] : StructOrder) {
      OS << "static void chk(const " << Name << " &s, Acc &a) {";
      for (const Type::Field &F : Ty->fields())
        OS << " chk(s." << F.Name << ", a);";
      OS << " }\n";
    }
    return OS.str();
  }
};

std::string Emitter::run() {
  // Emit the computation first so all struct types are registered.
  Scope FnBody;
  FnBody.Indent = "  ";
  std::string ResultUse = emit(P.Result, FnBody);
  std::string ResultTy = cType(P.Result->type());

  std::ostringstream Decls;
  for (const auto &In : P.Inputs)
    Decls << "static " << cType(In->type()) << " in_" << In->name() << ";\n";

  std::ostringstream Load;
  for (const auto &In : P.Inputs)
    emitLoadLeaf(Load, "in_" + In->name(), In->type());

  std::ostringstream OS;
  OS << "// Generated by the DMLL C++ emitter (Brown et al., CGO 2016 "
        "reproduction).\n"
     << "#include <cstdint>\n#include <cstdio>\n#include <cstdlib>\n"
     << "#include <cmath>\n#include <cstring>\n#include <vector>\n"
     << "#include <unordered_map>\n#include <algorithm>\n"
     << "#include <chrono>\n#include <utility>\n\n"
     << "struct Acc { long long count = 0; double sum = 0, abs = 0; };\n"
     << "static void chk(double v, Acc &a) { ++a.count; a.sum += v; a.abs "
        "+= std::fabs(v); }\n"
     << "static void chk(float v, Acc &a) { chk((double)v, a); }\n"
     << "static void chk(int64_t v, Acc &a) { chk((double)v, a); }\n"
     << "static void chk(int32_t v, Acc &a) { chk((double)v, a); }\n"
     << "static void chk(bool v, Acc &a) { chk(v ? 1.0 : 0.0, a); }\n"
     << "template <class T> static void chk(const std::vector<T> &v, Acc "
        "&a) { for (const T &x : v) chk(x, a); }\n"
     << "// Open-addressing int64 -> index map (faster than the C++11\n"
        "// standard library hash map; Section 6 of the paper).\n"
        "struct DmllMap {\n"
        "  std::vector<int64_t> K; std::vector<size_t> V;\n"
        "  std::vector<uint8_t> Used; size_t Mask = 0, Count = 0;\n"
        "  DmllMap() { rehash(64); }\n"
        "  void rehash(size_t n) {\n"
        "    std::vector<int64_t> ok(std::move(K));\n"
        "    std::vector<size_t> ov(std::move(V));\n"
        "    std::vector<uint8_t> ou(std::move(Used));\n"
        "    K.assign(n, 0); V.assign(n, 0); Used.assign(n, 0);\n"
        "    Mask = n - 1; Count = 0;\n"
        "    for (size_t i = 0; i < ou.size(); ++i)\n"
        "      if (ou[i]) insert(ok[i], ov[i]);\n"
        "  }\n"
        "  // Returns the slot's value; *inserted reports first occurrence.\n"
        "  size_t getOrInsert(int64_t k, size_t v, bool *inserted) {\n"
        "    if ((Count + 1) * 4 > (Mask + 1) * 3) rehash((Mask + 1) * 2);\n"
        "    size_t h = (size_t)(k * 0x9e3779b97f4a7c15LL) & Mask;\n"
        "    while (Used[h]) {\n"
        "      if (K[h] == k) { *inserted = false; return V[h]; }\n"
        "      h = (h + 1) & Mask;\n"
        "    }\n"
        "    Used[h] = 1; K[h] = k; V[h] = v; ++Count;\n"
        "    *inserted = true; return v;\n"
        "  }\n"
        "  void insert(int64_t k, size_t v) { bool b; (void)getOrInsert(k, "
        "v, &b); }\n"
        "};\n";

  OS << emitStructDefs() << "\n";

  OS << "template <class T> static void rdScalar(FILE *f, T &out) {\n"
     << "  if (fread(&out, sizeof(T), 1, f) != 1) { fprintf(stderr, \"bad "
        "input file\\n\"); exit(2); }\n}\n"
     << "template <class T> static void rdArray(FILE *f, std::vector<T> "
        "&out) {\n"
     << "  uint64_t n = 0; rdScalar(f, n); out.resize((size_t)n);\n"
     << "  if (n && fread(out.data(), sizeof(T), (size_t)n, f) != (size_t)n) "
        "{ fprintf(stderr, \"bad input file\\n\"); exit(2); }\n}\n\n";

  OS << Decls.str() << "\n";

  OS << "static " << ResultTy << " dmllRun() {\n"
     << FnBody.Code << "  return " << ResultUse << ";\n}\n\n";

  OS << "int main(int argc, char **argv) {\n"
     << "  if (argc < 2) { fprintf(stderr, \"usage: %s <inputs.bin>\\n\", "
        "argv[0]); return 1; }\n"
     << "  FILE *f = fopen(argv[1], \"rb\");\n"
     << "  if (!f) { perror(\"open inputs\"); return 1; }\n"
     << Load.str() << "  fclose(f);\n"
     << "  " << ResultTy << " result = dmllRun();\n"
     << "  const int iters = " << Opts.TimingIters << ";\n"
     << "  auto t0 = std::chrono::steady_clock::now();\n"
     << "  for (int it = 0; it < iters; ++it) result = dmllRun();\n"
     << "  auto t1 = std::chrono::steady_clock::now();\n"
     << "  double ms = std::chrono::duration<double, std::milli>(t1 - "
        "t0).count() / iters;\n"
     << "  Acc a;\n  chk(result, a);\n"
     << "  printf(\"count=%lld\\nsum=%.17g\\nabs=%.17g\\nms_per_iter=%.6f\\"
        "n\", a.count, a.sum, a.abs, ms);\n"
     << "  return 0;\n}\n";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Host-side helpers.
//===----------------------------------------------------------------------===//

void checksumInto(const Value &V, Checksum &C) {
  if (V.isArray()) {
    for (const Value &E : *V.array())
      checksumInto(E, C);
    return;
  }
  if (V.isStruct()) {
    for (const Value &F : V.strct()->Fields)
      checksumInto(F, C);
    return;
  }
  double D = V.toDouble();
  ++C.Count;
  C.Sum += D;
  C.Abs += std::fabs(D);
}

void writeLeaf(FILE *F, const Value &V, const TypeRef &Ty) {
  auto W = [&](const void *P, size_t N) {
    if (std::fwrite(P, 1, N, F) != N)
      fatalError("short write serializing inputs");
  };
  if (Ty->isScalar()) {
    if (Ty->isFloat()) {
      if (Ty->getKind() == TypeKind::Float32) {
        float X = static_cast<float>(V.toDouble());
        W(&X, sizeof(X));
      } else {
        double X = V.toDouble();
        W(&X, sizeof(X));
      }
    } else if (Ty->isBool()) {
      bool X = V.asBool();
      W(&X, sizeof(X));
    } else if (Ty->getKind() == TypeKind::Int32) {
      int32_t X = static_cast<int32_t>(V.toInt());
      W(&X, sizeof(X));
    } else {
      int64_t X = V.toInt();
      W(&X, sizeof(X));
    }
    return;
  }
  if (Ty->isArray() && Ty->elem()->isScalar()) {
    uint64_t N = V.arraySize();
    W(&N, sizeof(N));
    for (const Value &E : *V.array())
      writeLeaf(F, E, Ty->elem());
    return;
  }
  if (Ty->isStruct()) {
    const auto &Fields = Ty->fields();
    for (size_t I = 0; I < Fields.size(); ++I)
      writeLeaf(F, V.strct()->Fields[I], Fields[I].Ty);
    return;
  }
  if (Ty->isArray() && Ty->elem()->isStruct()) {
    // Column per field.
    const auto &Fields = Ty->elem()->fields();
    for (size_t FI = 0; FI < Fields.size(); ++FI) {
      uint64_t N = V.arraySize();
      if (std::fwrite(&N, 1, sizeof(N), F) != sizeof(N))
        fatalError("short write serializing inputs");
      for (const Value &E : *V.array())
        writeLeaf(F, E.strct()->Fields[FI], Fields[FI].Ty);
    }
    return;
  }
  fatalError("unsupported input type for serialization: " + Ty->str());
}

} // namespace

std::string dmll::emitCpp(const Program &P, const CppEmitOptions &Opts) {
  TraceSpan Span("codegen.emit-cpp", "codegen");
  std::string Src = Emitter(P, Opts).run();
  if (Span.live()) {
    Span.argInt("nodes", static_cast<int64_t>(countNodes(P.Result)));
    Span.argInt("source.bytes", static_cast<int64_t>(Src.size()));
  }
  return Src;
}

Checksum dmll::checksumValue(const Value &V) {
  Checksum C;
  checksumInto(V, C);
  return C;
}

void dmll::writeInputsBinary(const Program &P, const InputMap &Inputs,
                             const std::string &Path) {
  FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    fatalError("cannot open " + Path + " for writing");
  for (const auto &In : P.Inputs) {
    auto It = Inputs.find(In->name());
    if (It == Inputs.end())
      fatalError("missing input '" + In->name() + "'");
    writeLeaf(F, It->second, In->type());
  }
  std::fclose(F);
}

GeneratedRunResult dmll::compileAndRun(const Program &P,
                                       const InputMap &Inputs,
                                       const std::string &WorkDir,
                                       const std::string &BaseName,
                                       const CppEmitOptions &Opts) {
  GeneratedRunResult R;
  std::string Src = WorkDir + "/" + BaseName + ".cpp";
  std::string Bin = WorkDir + "/" + BaseName;
  std::string Dat = WorkDir + "/" + BaseName + ".bin";
  {
    FILE *F = std::fopen(Src.c_str(), "w");
    if (!F)
      fatalError("cannot write " + Src);
    std::string Code = emitCpp(P, Opts);
    std::fwrite(Code.data(), 1, Code.size(), F);
    std::fclose(F);
  }
  {
    TraceSpan S("codegen.write-inputs", "codegen");
    writeInputsBinary(P, Inputs, Dat);
  }
  // -fopenmp-simd honors the emitter's `#pragma omp simd` hints without
  // pulling in the OpenMP runtime.
  std::string Compile = "c++ -O3 -march=native -std=c++20 -fopenmp-simd -o " +
                        Bin + " " + Src + " 2> " + Bin + ".log";
  {
    TraceSpan S("codegen.gcc", "codegen");
    S.arg("binary", Bin);
    if (std::system(Compile.c_str()) != 0)
      return R;
  }
  TraceSpan RunSpan("codegen.run", "codegen");
  std::string Run = Bin + " " + Dat;
  FILE *Pipe = popen(Run.c_str(), "r");
  if (!Pipe)
    return R;
  char Line[256];
  while (std::fgets(Line, sizeof(Line), Pipe)) {
    long long Count;
    double D;
    if (std::sscanf(Line, "count=%lld", &Count) == 1)
      R.Sum.Count = Count;
    else if (std::sscanf(Line, "sum=%lf", &D) == 1)
      R.Sum.Sum = D;
    else if (std::sscanf(Line, "abs=%lf", &D) == 1)
      R.Sum.Abs = D;
    else if (std::sscanf(Line, "ms_per_iter=%lf", &D) == 1)
      R.MillisPerIter = D;
  }
  R.Ok = pclose(Pipe) == 0;
  if (RunSpan.live() && R.Ok) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.3f", R.MillisPerIter);
    RunSpan.arg("ms_per_iter", Buf);
  }
  return R;
}
