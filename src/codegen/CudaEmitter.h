//===- codegen/CudaEmitter.h - CUDA-dialect kernel emission ----*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits CUDA-dialect kernel source for the top-level multiloops of a
/// program, realizing the GPU implementation strategies of Section 3.1:
///
///  * Collect with a non-trivial condition: two-phase — evaluate the
///    condition for all indices, exclusive-scan to sizes, then write values
///    to their final positions (no dynamic append on device).
///  * Reduce over scalars: tree reduction in __shared__ memory.
///  * Reduce over vectors: global-memory strided reduction, annotated as
///    inefficient — the reason Row-to-Column Reduce exists.
///  * BucketReduce: atomic read-modify-write per key (the sorting-based
///    alternative noted in the paper is left to future work).
///
/// There is no GPU on this host (DESIGN.md §2), so the output is checked
/// structurally by tests and used by the GPU simulator's kernel-choice
/// logic, not executed.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_CODEGEN_CUDAEMITTER_H
#define DMLL_CODEGEN_CUDAEMITTER_H

#include "ir/Expr.h"

#include <string>
#include <vector>

namespace dmll {

/// Summary of the kernel choices made for one loop.
struct CudaKernelInfo {
  std::string Name;
  bool TwoPhaseCollect = false;
  bool SharedMemReduce = false; ///< scalar reduction in shared memory
  bool GlobalMemReduce = false; ///< vector reduction spilling to global
  bool AtomicBuckets = false;
};

/// Result of CUDA emission.
struct CudaEmission {
  std::string Source;
  std::vector<CudaKernelInfo> Kernels;
};

/// Emits kernels for every top-level (closed) multiloop of \p P.
CudaEmission emitCuda(const Program &P);

} // namespace dmll

#endif // DMLL_CODEGEN_CUDAEMITTER_H
