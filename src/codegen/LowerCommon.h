//===- codegen/LowerCommon.h - Shared lowering helpers ---------*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by every backend that lowers multiloops out of the boxed
/// interpreter world: the C++ emitter (codegen/CppEmitter), the CUDA emitter,
/// and the in-process kernel engine (src/engine). They answer the questions
/// every lowering asks per expression: "which unboxed scalar class does this
/// type collapse to?" (the interpreter collapses i32/i64 to int64 and
/// f32/f64 to double — see interp/Value.h), "is this reduction the plain
/// scalar addition?" (which permits a zero-initialized accumulator with no
/// first-element flag, the shape compilers vectorize), and "is this loop a
/// bounded gather precompute?" (which a backend may evaluate speculatively —
/// e.g. as a launch-time column — even though mayTrap() conservatively says
/// any loop might trap).
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_CODEGEN_LOWERCOMMON_H
#define DMLL_CODEGEN_LOWERCOMMON_H

#include "ir/Expr.h"
#include "ir/Type.h"

namespace dmll {
namespace lower {

/// The unboxed register/buffer classes scalars collapse to at runtime,
/// mirroring interp/Value.h: bool, int64_t, double. NotScalar marks arrays
/// and structs (unlowerable as flat registers).
enum class ScalarKind { I1, I64, F64, NotScalar };

/// Maps a static type to its runtime scalar class.
ScalarKind scalarKindOf(const Type &Ty);

/// Printable name ("i1", "i64", "f64", "non-scalar").
const char *scalarKindName(ScalarKind K);

/// True when \p R is the two-parameter scalar addition (a, b) => a + b (in
/// either parameter order): its accumulator may start at zero with no
/// first-element flag, which lets lowered reduction loops vectorize.
bool isScalarAddReduce(const Func &R);

/// True when \p E is a loop that provably cannot trap, so a backend may
/// evaluate it speculatively — ahead of any guarding condition — the way
/// the kernel engine materializes column sources at launch. The structural
/// whitelist matches the loops the gather-precompute rewrite
/// (transform/loop/LoopTransforms.h) builds: a single unconditional
/// Collect whose body reads arrays only at the loop index, where the loop
/// size is a Min-chain of the lengths of every array read (all reads
/// in-bounds by construction) and the rest of the body is trap-free.
bool isBoundedGatherLoop(const ExprRef &E);

} // namespace lower
} // namespace dmll

#endif // DMLL_CODEGEN_LOWERCOMMON_H
