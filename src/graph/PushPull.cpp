//===- graph/PushPull.cpp --------------------------------------*- C++ -*-===//

#include "graph/PushPull.h"

#include <atomic>
#include <cmath>

using namespace dmll;
using namespace dmll::graph;
using data::CsrGraph;

std::vector<double> graph::pageRankStep(const CsrGraph &Out,
                                        const CsrGraph &In,
                                        const std::vector<double> &Ranks,
                                        GraphMode Mode,
                                        ThreadPool &Pool) {
  size_t N = static_cast<size_t>(Out.NumV);
  double Base = 0.15 / static_cast<double>(N);
  std::vector<double> Next(N, 0.0);

  if (Mode == GraphMode::Pull) {
    Pool.parallelFor(Out.NumV, 1024, [&](int64_t B, int64_t E, unsigned) {
      for (int64_t V = B; V < E; ++V) {
        double Sum = 0;
        for (int64_t X = In.Offsets[V]; X < In.Offsets[V + 1]; ++X) {
          int64_t U = In.Edges[static_cast<size_t>(X)];
          Sum += Ranks[static_cast<size_t>(U)] /
                 static_cast<double>(
                     std::max<int64_t>(Out.OutDeg[static_cast<size_t>(U)], 1));
        }
        Next[static_cast<size_t>(V)] = Base + 0.85 * Sum;
      }
    });
    return Next;
  }

  // Push: per-worker scatter buffers, combined at the barrier (the
  // distributed-friendly formulation: contributions are local, then
  // exchanged).
  unsigned W = Pool.numThreads();
  std::vector<std::vector<double>> Buffers(W, std::vector<double>(N, 0.0));
  Pool.parallelFor(Out.NumV, 1024, [&](int64_t B, int64_t E, unsigned Worker) {
    std::vector<double> &Buf = Buffers[Worker];
    for (int64_t U = B; U < E; ++U) {
      double Contrib =
          Ranks[static_cast<size_t>(U)] /
          static_cast<double>(
              std::max<int64_t>(Out.OutDeg[static_cast<size_t>(U)], 1));
      for (int64_t X = Out.Offsets[U]; X < Out.Offsets[U + 1]; ++X)
        Buf[static_cast<size_t>(Out.Edges[static_cast<size_t>(X)])] +=
            Contrib;
    }
  });
  Pool.parallelFor(Out.NumV, 4096, [&](int64_t B, int64_t E, unsigned) {
    for (int64_t V = B; V < E; ++V) {
      double Sum = 0;
      for (unsigned Worker = 0; Worker < W; ++Worker)
        Sum += Buffers[Worker][static_cast<size_t>(V)];
      Next[static_cast<size_t>(V)] = Base + 0.85 * Sum;
    }
  });
  return Next;
}

int64_t graph::triangleCount(const CsrGraph &G, ThreadPool &Pool) {
  std::atomic<int64_t> Count{0};
  Pool.parallelFor(G.NumV, 256, [&](int64_t B, int64_t E, unsigned) {
    int64_t Local = 0;
    for (int64_t U = B; U < E; ++U) {
      for (int64_t X = G.Offsets[U]; X < G.Offsets[U + 1]; ++X) {
        int64_t V = G.Edges[static_cast<size_t>(X)];
        if (U >= V)
          continue;
        int64_t A = G.Offsets[U], AEnd = G.Offsets[U + 1];
        int64_t Bi = G.Offsets[V], BEnd = G.Offsets[V + 1];
        while (A < AEnd && Bi < BEnd) {
          int64_t WA = G.Edges[static_cast<size_t>(A)];
          int64_t WB = G.Edges[static_cast<size_t>(Bi)];
          if (WA < WB) {
            ++A;
          } else if (WA > WB) {
            ++Bi;
          } else {
            Local += WA > V;
            ++A;
            ++Bi;
          }
        }
      }
    }
    Count.fetch_add(Local, std::memory_order_relaxed);
  });
  return Count.load();
}
