//===- graph/PushPull.h - OptiGraph push/pull implementations --*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OptiGraph (Section 6.2): a graph DSL on top of DMLL whose domain-
/// specific transformation switches between a *pull* model of computation
/// (gather over incoming neighbors — natural in shared memory) and a *push*
/// model (scatter contributions to out-neighbors — natural in distributed
/// systems), following Hong et al. [16]. These are the native
/// "DMLL-generated" graph kernels the graph benchmarks time: parallel over
/// vertices/edges with merge-based intersection primitives, structurally
/// what the DSL's code generator emits.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_GRAPH_PUSHPULL_H
#define DMLL_GRAPH_PUSHPULL_H

#include "data/Datasets.h"
#include "runtime/ThreadPool.h"

namespace dmll {
namespace graph {

/// Computation direction (the domain-specific transformation's choice).
enum class GraphMode { Pull, Push };

/// One PageRank iteration. Pull gathers from the transposed CSR \p In;
/// Push scatters rank/outdeg over the forward CSR \p Out into per-thread
/// buffers combined at the end. Both produce identical results.
std::vector<double> pageRankStep(const data::CsrGraph &Out,
                                 const data::CsrGraph &In,
                                 const std::vector<double> &Ranks,
                                 GraphMode Mode, ThreadPool &Pool);

/// Exact triangle count over a symmetrized graph with sorted adjacency
/// (merge-based intersection), parallel over vertices.
int64_t triangleCount(const data::CsrGraph &Und, ThreadPool &Pool);

} // namespace graph
} // namespace dmll

#endif // DMLL_GRAPH_PUSHPULL_H
