//===- graph/Graph.cpp -----------------------------------------*- C++ -*-===//

#include "graph/Graph.h"

#include <set>

using namespace dmll;
using namespace dmll::graph;
using data::CsrGraph;

CsrGraph graph::symmetrize(const CsrGraph &G) {
  std::set<std::pair<int64_t, int64_t>> Und;
  for (int64_t U = 0; U < G.NumV; ++U)
    for (int64_t E = G.Offsets[U]; E < G.Offsets[U + 1]; ++E) {
      int64_t V = G.Edges[static_cast<size_t>(E)];
      Und.insert({U, V});
      Und.insert({V, U});
    }
  CsrGraph S;
  S.NumV = G.NumV;
  S.Offsets.assign(static_cast<size_t>(S.NumV) + 1, 0);
  for (const auto &[U, V] : Und)
    ++S.Offsets[static_cast<size_t>(U) + 1];
  for (size_t V = 1; V < S.Offsets.size(); ++V)
    S.Offsets[V] += S.Offsets[V - 1];
  S.Edges.resize(Und.size());
  std::vector<int64_t> Cur(S.Offsets.begin(), S.Offsets.end() - 1);
  for (const auto &[U, V] : Und)
    S.Edges[static_cast<size_t>(Cur[static_cast<size_t>(U)]++)] = V;
  for (int64_t V = 0; V < S.NumV; ++V)
    S.OutDeg.push_back(S.deg(V));
  return S;
}

EdgeList graph::edgeList(const CsrGraph &G) {
  EdgeList L;
  L.Src.reserve(G.Edges.size());
  L.Dst.reserve(G.Edges.size());
  for (int64_t U = 0; U < G.NumV; ++U)
    for (int64_t E = G.Offsets[U]; E < G.Offsets[U + 1]; ++E) {
      L.Src.push_back(U);
      L.Dst.push_back(G.Edges[static_cast<size_t>(E)]);
    }
  return L;
}

InputMap graph::pageRankInputs(const CsrGraph &G,
                               const std::vector<double> &Ranks) {
  CsrGraph In = G.transposed();
  return {{"in_offsets", Value::arrayOfInts(In.Offsets)},
          {"in_edges", Value::arrayOfInts(In.Edges)},
          {"outdeg", Value::arrayOfInts(G.OutDeg)},
          {"ranks", Value::arrayOfDoubles(Ranks)},
          {"numv", Value(G.NumV)}};
}

InputMap graph::triangleInputs(const CsrGraph &Und) {
  EdgeList L = edgeList(Und);
  return {{"offsets", Value::arrayOfInts(Und.Offsets)},
          {"edges", Value::arrayOfInts(Und.Edges)},
          {"edge_src", Value::arrayOfInts(L.Src)},
          {"edge_dst", Value::arrayOfInts(L.Dst)}};
}
