//===- graph/Graph.h - Graph utilities for OptiGraph apps ------*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graph helpers shared by the OptiGraph-style applications (Section 6.2):
/// symmetrization, flat edge lists, and conversion to the interpreter's
/// input Values for the IR formulations.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_GRAPH_GRAPH_H
#define DMLL_GRAPH_GRAPH_H

#include "data/Datasets.h"
#include "interp/Interp.h"

namespace dmll {
namespace graph {

/// Undirected view: both directions stored, adjacency sorted.
data::CsrGraph symmetrize(const data::CsrGraph &G);

/// Flat (src, dst) edge list in CSR order.
struct EdgeList {
  std::vector<int64_t> Src, Dst;
};
EdgeList edgeList(const data::CsrGraph &G);

/// Inputs for apps::pageRankPull (incoming CSR + out-degrees + ranks).
InputMap pageRankInputs(const data::CsrGraph &G,
                        const std::vector<double> &Ranks);

/// Inputs for apps::triangleCount over a symmetrized graph.
InputMap triangleInputs(const data::CsrGraph &Und);

} // namespace graph
} // namespace dmll

#endif // DMLL_GRAPH_GRAPH_H
