//===- faultinject/FaultInject.cpp ----------------------------*- C++ -*-===//

#include "faultinject/FaultInject.h"

#include "support/Error.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

using namespace dmll;
using namespace dmll::faults;

namespace {

std::atomic<bool> Armed{false};
FaultPlan Plan; // written only while disarmed
std::atomic<uint64_t> Opportunities[NumHooks];
std::atomic<uint64_t> Fired[NumHooks];

double hookProb(Hook H) {
  switch (H) {
  case Hook::Alloc:
    return Plan.AllocProb;
  case Hook::Trap:
    return Plan.TrapProb;
  case Hook::Delay:
    return Plan.DelayProb;
  case Hook::Stall:
    return Plan.StallProb;
  }
  return 0.0;
}

/// splitmix64 of (seed, hook, opportunity index): the decision for the N-th
/// opportunity of a hook is a pure function of the plan, independent of
/// which thread draws it.
uint64_t mix(uint64_t Seed, unsigned H, uint64_t N) {
  uint64_t X = Seed ^ (0x9e3779b97f4a7c15ULL * (H + 1)) ^ (N * 0xbf58476d1ce4e5b9ULL);
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebULL;
  X ^= X >> 31;
  return X;
}

void resetCounters() {
  for (unsigned I = 0; I < NumHooks; ++I) {
    Opportunities[I].store(0, std::memory_order_relaxed);
    Fired[I].store(0, std::memory_order_relaxed);
  }
}

} // namespace

bool dmll::faults::shouldFire(Hook H) {
  if (!Armed.load(std::memory_order_acquire))
    return false;
  double P = hookProb(H);
  if (P <= 0.0)
    return false;
  unsigned Idx = static_cast<unsigned>(H);
  uint64_t N = Opportunities[Idx].fetch_add(1, std::memory_order_relaxed);
  uint64_t R = mix(Plan.Seed, Idx, N);
  // Compare the top 53 bits against the probability threshold.
  double U = static_cast<double>(R >> 11) * 0x1.0p-53;
  if (U >= P)
    return false;
  Fired[Idx].fetch_add(1, std::memory_order_relaxed);
  if (H == Hook::Delay)
    std::this_thread::sleep_for(std::chrono::microseconds(Plan.DelayMicros));
  else if (H == Hook::Stall)
    std::this_thread::sleep_for(std::chrono::microseconds(Plan.StallMicros));
  return true;
}

uint64_t dmll::faults::firedCount(Hook H) {
  return Fired[static_cast<unsigned>(H)].load(std::memory_order_relaxed);
}

ScopedFaultInjection::ScopedFaultInjection(const FaultPlan &P) {
  if (Armed.load(std::memory_order_relaxed))
    fatalError("fault injection armed twice");
  Plan = P;
  resetCounters();
  Armed.store(true, std::memory_order_release);
}

ScopedFaultInjection::~ScopedFaultInjection() {
  Armed.store(false, std::memory_order_release);
}

bool dmll::faults::armFaultsFromEnv() {
  const char *Env = std::getenv("DMLL_FAULTS");
  if (!Env || !*Env)
    return false;
  FaultPlan P;
  std::string S(Env);
  size_t Pos = 0;
  while (Pos < S.size()) {
    size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = S.size();
    std::string Item = S.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    size_t Eq = Item.find('=');
    if (Eq == std::string::npos)
      continue;
    std::string Key = Item.substr(0, Eq);
    std::string Val = Item.substr(Eq + 1);
    if (Key == "seed")
      P.Seed = std::strtoull(Val.c_str(), nullptr, 10);
    else if (Key == "alloc")
      P.AllocProb = std::strtod(Val.c_str(), nullptr);
    else if (Key == "trap")
      P.TrapProb = std::strtod(Val.c_str(), nullptr);
    else if (Key == "delay")
      P.DelayProb = std::strtod(Val.c_str(), nullptr);
    else if (Key == "stall")
      P.StallProb = std::strtod(Val.c_str(), nullptr);
    else if (Key == "delay_us")
      P.DelayMicros = std::strtoll(Val.c_str(), nullptr, 10);
    else if (Key == "stall_us")
      P.StallMicros = std::strtoll(Val.c_str(), nullptr, 10);
  }
  // Leaked deliberately: armed for the process lifetime.
  static ScopedFaultInjection *Lifetime = nullptr;
  if (!Lifetime)
    Lifetime = new ScopedFaultInjection(P);
  return true;
}
