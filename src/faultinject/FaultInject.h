//===- faultinject/FaultInject.h - Deterministic fault injector -*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seeded fault injector proving the recoverable-execution
/// contract (docs/ROBUSTNESS.md). The runtime carries four dormant hook
/// points; arming a FaultPlan (ScopedFaultInjection, or the DMLL_FAULTS
/// environment variable parsed by armFaultsFromEnv) makes each hook fire
/// pseudo-randomly but *reproducibly*:
///
///   Alloc — large Value/column materializations fail with a recoverable
///           "injected allocation failure" trap instead of succeeding
///   Trap  — evaluator checkpoints raise a synthetic user-program trap
///   Delay — worker chunk bodies sleep DelayMicros before running,
///           shuffling chunk completion order and steal patterns
///   Stall — chunk boundaries sleep StallMicros after completing a chunk,
///           widening the window in which siblings observe a cancel
///
/// Decisions are pure functions of (plan seed, hook, per-hook firing
/// counter) — thread interleavings change *which worker* draws decision
/// N of a hook, never the decision sequence itself, so a schedule that
/// fired k faults fires k faults on every machine. The chaos oracle
/// (src/fuzz/Oracle.h runChaos) drives random plans through generated
/// programs and asserts survival + post-fault bit-identity.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_FAULTINJECT_FAULTINJECT_H
#define DMLL_FAULTINJECT_FAULTINJECT_H

#include <cstdint>

namespace dmll {
namespace faults {

/// The runtime hook points a FaultPlan can arm.
enum class Hook : unsigned {
  Alloc = 0, ///< fail a large allocation with a recoverable trap
  Trap,      ///< raise a synthetic trap at an evaluator checkpoint
  Delay,     ///< sleep before running a worker chunk body
  Stall,     ///< sleep at a chunk boundary after completing a chunk
};
constexpr unsigned NumHooks = 4;

/// One deterministic fault schedule. Probabilities are per firing
/// opportunity, in the closed range [0, 1].
struct FaultPlan {
  uint64_t Seed = 0;
  double AllocProb = 0.0;
  double TrapProb = 0.0;
  double DelayProb = 0.0;
  double StallProb = 0.0;
  /// Sleep lengths for Delay / Stall firings.
  int64_t DelayMicros = 50;
  int64_t StallMicros = 200;
};

/// True when a plan is armed AND \p H fires for this opportunity; advances
/// the hook's firing counter either way. The dormant (unarmed) fast path is
/// one relaxed atomic load. For Delay/Stall the sleep is performed inside
/// shouldFire before it returns true.
bool shouldFire(Hook H);

/// Number of times \p H has actually fired since the plan was armed — lets
/// tests assert a schedule really injected something.
uint64_t firedCount(Hook H);

/// Arms \p P process-wide until the object is destroyed, resetting all
/// firing counters. Not reentrant: at most one live ScopedFaultInjection.
class ScopedFaultInjection {
public:
  explicit ScopedFaultInjection(const FaultPlan &P);
  ~ScopedFaultInjection();
  ScopedFaultInjection(const ScopedFaultInjection &) = delete;
  ScopedFaultInjection &operator=(const ScopedFaultInjection &) = delete;
};

/// Parses DMLL_FAULTS ("seed=N,alloc=P,trap=P,delay=P,stall=P") and arms it
/// for the process lifetime; no-op when the variable is unset or empty.
/// Returns true if a plan was armed. Intended for tool main()s.
bool armFaultsFromEnv();

} // namespace faults
} // namespace dmll

#endif // DMLL_FAULTINJECT_FAULTINJECT_H
