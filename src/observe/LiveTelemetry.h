//===- observe/LiveTelemetry.h - Snapshotter + Prometheus ------*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The live half of the telemetry plane (docs/TELEMETRY.md): renders the
/// MetricsRegistry — counters, gauges, histograms, including the per-loop
/// `exec.loop_ms|loop=<sig>|engine=<e>` series the interpreter feeds — plus
/// the active sampling profiler's buckets in Prometheus text exposition
/// format, and runs a LiveSnapshotter thread that periodically writes the
/// exposition to a file (atomic tmp+rename, so tailers never see a torn
/// snapshot), serves it over an optional localhost TCP endpoint, and
/// appends counter-delta records to the active event log. `dmll-top` tails
/// either output and renders the live per-loop table.
///
/// Registry names may carry labels after `|` separators
/// (`base|key=value|key=value`); the renderer splits them into Prometheus
/// label sets, so one histogram family groups every loop/engine series.
/// A parser + format checker for the exposition text lives here too, used
/// by dmll-top, the telemetry tests, and the telemetry_smoke gate.
///
/// TelemetryCli/TelemetryScope wrap the whole plane behind the shared
/// command-line flags (--metrics-out/--metrics-live/--metrics-port/
/// --events-out/--sample/--sample-out) for quickstart and the benches.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_OBSERVE_LIVETELEMETRY_H
#define DMLL_OBSERVE_LIVETELEMETRY_H

#include "observe/Events.h"
#include "observe/MetricsRegistry.h"
#include "observe/Sampler.h"

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace dmll {

/// Splits a registry instrument name into its base and `|key=value` labels.
void splitMetricName(const std::string &Name, std::string &Base,
                     std::vector<std::pair<std::string, std::string>> &Labels);

/// Renders \p R (and the active SamplingProfiler's buckets, if any) in
/// Prometheus text exposition format: `dmll_`-prefixed mangled names,
/// counters with `_total`, histograms with cumulative `_bucket{le=...}`
/// rows ending at `+Inf`, plus `_sum`/`_count`. `_count` equals the `+Inf`
/// bucket by construction, so a snapshot taken mid-update still satisfies
/// the Prometheus histogram invariant.
std::string renderPrometheus(const MetricsRegistry &R);
/// The process-global registry's exposition.
std::string renderPrometheus();

/// One parsed exposition sample.
struct PromSample {
  std::string Name; ///< full series name (e.g. dmll_exec_loop_ms_bucket)
  std::map<std::string, std::string> Labels;
  double Value = 0;
};

/// A parsed exposition document.
struct PromSnapshot {
  std::vector<PromSample> Samples;
  std::map<std::string, std::string> Types; ///< # TYPE name -> type

  /// First sample with \p Name and exactly \p Labels, or nullptr.
  const PromSample *
  find(const std::string &Name,
       const std::map<std::string, std::string> &Labels) const;
};

/// Parses exposition text; false (with \p Err set) on malformed lines.
bool parsePrometheus(const std::string &Text, PromSnapshot &Out,
                     std::string *Err = nullptr);

/// Format sanity check: parses \p Text and verifies every series name is
/// legal, every sample's family is TYPE-declared, and every histogram's
/// buckets are cumulative, end in a `+Inf` row, and agree with `_count`.
/// Returns human-readable problems (empty = pass).
std::vector<std::string> checkPrometheus(const std::string &Text);

/// Background metrics snapshotter: a dedicated thread that renders the
/// exposition every period, atomically replaces \p Path (if set), answers
/// HTTP GETs on 127.0.0.1:\p Port (if requested), and appends a
/// metrics.snapshot delta event per cycle to the active EventLog.
///
/// The endpoint is crash-proof against misbehaving clients (support/Net.h):
/// responses go out with MSG_NOSIGNAL so a disconnect mid-response is a
/// recorded error, not a SIGPIPE, and the client's request is drained
/// (bounded, non-blocking) before the response is written and the socket
/// closed, so scrapers never see an RST clobber the already-sent body.
class LiveSnapshotter {
public:
  struct Options {
    double PeriodMs = 200;
    std::string Path; ///< exposition file; empty writes no file
    /// Localhost TCP endpoint: a fixed port, or 0 to bind a kernel-assigned
    /// ephemeral port (read it back via boundPort() — this is what keeps
    /// parallel test runs from racing on port collisions). Negative serves
    /// nothing.
    int Port = -1;
  };

  explicit LiveSnapshotter(Options O);
  ~LiveSnapshotter();

  void start();
  void stop(); ///< takes one final snapshot before joining

  /// Forces one snapshot cycle from the calling thread.
  void snapshotNow();

  int64_t snapshots() const { return Count.load(std::memory_order_relaxed); }
  /// The most recently rendered exposition text.
  std::string lastText() const;
  /// The configured port (Options::Port, -1 when no endpoint was asked).
  int port() const { return Opts.Port; }
  /// The actually-bound endpoint port: equals port() for a fixed bind, the
  /// kernel-assigned port for Options::Port == 0, and 0 when there is no
  /// live endpoint (none requested, or the bind failed).
  int boundPort() const { return BoundPort; }

private:
  void cycle();
  void threadMain();
  void serve(const std::string &Text);

  Options Opts;
  std::atomic<bool> Running{false};
  std::thread Thread;
  std::atomic<int64_t> Count{0};
  mutable std::mutex Mu; ///< serializes cycles; guards Last/PrevCounters
  std::string Last;
  std::map<std::string, int64_t> PrevCounters;
  int ListenFd = -1;
  int BoundPort = 0; ///< set once in the constructor, then read-only
};

/// The shared telemetry command-line surface (quickstart, benches, smoke):
///   --metrics-out F    write a final Prometheus snapshot to F on exit
///   --metrics-live F   run the snapshotter, replacing F every period
///   --metrics-port N   also serve the exposition on 127.0.0.1:N; N == 0
///                      binds an ephemeral port and prints it to stderr
///   --events-out F     write the dmll-events-v1 JSONL log to F
///   --sample           run the sampling profiler
///   --sample-out F     write collapsed stacks to F on exit (implies
///                      --sample)
struct TelemetryCli {
  std::string MetricsOut, MetricsLive, EventsOut, SampleOut;
  bool Sample = false;
  /// -1: no endpoint requested; 0: ephemeral; >0: fixed port.
  int Port = -1;
  /// 50 Hz. Each tick on a saturated single-core host costs ~100-200us
  /// effective (the wakeup preempts a worker and pollutes its caches), so
  /// 50 Hz keeps measured overhead near half the 2% telemetry_smoke
  /// budget while multi-second loops still collect thousands of samples.
  double SamplePeriodMs = 20;
  double LivePeriodMs = 100;

  bool any() const {
    return !MetricsOut.empty() || !MetricsLive.empty() ||
           !EventsOut.empty() || !SampleOut.empty() || Sample || Port >= 0;
  }
};

/// Parses the flags above out of argv (leaving unrelated flags alone).
TelemetryCli telemetryCliArgs(int Argc, char **Argv);

/// RAII wiring for TelemetryCli: activates the event log, the sampling
/// profiler, and the snapshotter on construction; on destruction writes the
/// final --metrics-out snapshot and --sample-out collapsed stacks, then
/// tears everything down (the snapshotter takes a last snapshot while the
/// sampler is still live).
class TelemetryScope {
public:
  explicit TelemetryScope(const TelemetryCli &C);
  ~TelemetryScope();

  SamplingProfiler *profiler() { return Prof.get(); }
  LiveSnapshotter *snapshotter() { return Snap.get(); }
  EventLog *events() { return Log.get(); }

private:
  TelemetryCli Cli;
  std::unique_ptr<EventLog> Log;
  std::unique_ptr<EventLogActivation> LogAct;
  std::unique_ptr<SamplingProfiler> Prof;
  std::unique_ptr<SamplerActivation> ProfAct;
  std::unique_ptr<LiveSnapshotter> Snap;
};

} // namespace dmll

#endif // DMLL_OBSERVE_LIVETELEMETRY_H
