//===- observe/Metrics.cpp -------------------------------------*- C++ -*-===//

#include "observe/Metrics.h"

#include <cstdio>
#include <sstream>

using namespace dmll;

int64_t ParallelForStats::totalChunks() const {
  int64_t N = 0;
  for (const WorkerStats &W : Workers)
    N += W.Chunks;
  return N;
}

int64_t ParallelForStats::totalItems() const {
  int64_t N = 0;
  for (const WorkerStats &W : Workers)
    N += W.Items;
  return N;
}

namespace {

CounterSample sumCounters(const std::vector<WorkerStats> &Workers) {
  CounterSample C;
  for (const WorkerStats &W : Workers)
    if (W.Chunks > 0)
      C.add(W.Counters);
  return C;
}

} // namespace

CounterSample ParallelForStats::totalCounters() const {
  return sumCounters(Workers);
}

CounterSample ExecProfile::totalCounters() const {
  return sumCounters(Workers);
}

void ExecProfile::accumulate(const ParallelForStats &S) {
  for (const WorkerStats &W : S.Workers) {
    if (W.Worker >= Workers.size()) {
      Workers.resize(W.Worker + 1);
      for (size_t I = 0; I < Workers.size(); ++I)
        Workers[I].Worker = static_cast<unsigned>(I);
    }
    WorkerStats &Acc = Workers[W.Worker];
    Acc.Chunks += W.Chunks;
    Acc.Items += W.Items;
    Acc.Steals += W.Steals;
    Acc.BusyMs += W.BusyMs;
    Acc.WaitMs += W.WaitMs;
    if (W.Chunks > 0)
      Acc.Counters.add(W.Counters);
  }
}

std::string dmll::renderWorkerStats(const std::vector<WorkerStats> &Workers) {
  std::ostringstream OS;
  OS << "worker   chunks      items   steals    busy(ms)    wait(ms)\n";
  for (const WorkerStats &W : Workers) {
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf), "%6u %8lld %10lld %8lld %11.3f %11.3f\n",
                  W.Worker, static_cast<long long>(W.Chunks),
                  static_cast<long long>(W.Items),
                  static_cast<long long>(W.Steals), W.BusyMs, W.WaitMs);
    OS << Buf;
  }
  return OS.str();
}
