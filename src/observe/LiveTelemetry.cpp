//===- observe/LiveTelemetry.cpp -------------------------------*- C++ -*-===//

#include "observe/LiveTelemetry.h"

#include "support/Net.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace dmll;

void dmll::splitMetricName(
    const std::string &Name, std::string &Base,
    std::vector<std::pair<std::string, std::string>> &Labels) {
  Labels.clear();
  size_t Bar = Name.find('|');
  Base = Name.substr(0, Bar);
  while (Bar != std::string::npos) {
    size_t Next = Name.find('|', Bar + 1);
    std::string Part = Name.substr(Bar + 1, Next == std::string::npos
                                                ? std::string::npos
                                                : Next - Bar - 1);
    size_t Eq = Part.find('=');
    if (Eq != std::string::npos)
      Labels.emplace_back(Part.substr(0, Eq), Part.substr(Eq + 1));
    Bar = Next;
  }
}

namespace {

/// `exec.loop_ms` -> `dmll_exec_loop_ms`; every character outside
/// [a-zA-Z0-9_] becomes '_'.
std::string promName(const std::string &Base) {
  std::string Out = "dmll_";
  for (char C : Base)
    Out += (std::isalnum(static_cast<unsigned char>(C)) || C == '_')
               ? C
               : '_';
  return Out;
}

void promLabelValue(std::string &Out, const std::string &V) {
  for (char C : V) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '"')
      Out += "\\\"";
    else if (C == '\n')
      Out += "\\n";
    else
      Out += C;
  }
}

/// Renders `{k="v",...}` (plus \p Extra as a pre-rendered `k="v"` pair).
std::string
promLabels(const std::vector<std::pair<std::string, std::string>> &Labels,
           const std::string &Extra = {}) {
  if (Labels.empty() && Extra.empty())
    return "";
  std::string Out = "{";
  bool First = true;
  for (const auto &[K, V] : Labels) {
    if (!First)
      Out += ',';
    First = false;
    Out += K;
    Out += "=\"";
    promLabelValue(Out, V);
    Out += '"';
  }
  if (!Extra.empty()) {
    if (!First)
      Out += ',';
    Out += Extra;
  }
  Out += '}';
  return Out;
}

void promNum(std::string &Out, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  Out += Buf;
}

} // namespace

std::string dmll::renderPrometheus(const MetricsRegistry &R) {
  MetricsSnapshot S = R.snapshot();
  std::string Out;
  Out.reserve(4096);

  // Group label variants under their base family so the # TYPE line is
  // emitted once per family.
  auto ForFamilies = [](auto &Map, auto Fn) {
    std::map<std::string,
             std::vector<std::pair<
                 std::vector<std::pair<std::string, std::string>>,
                 const typename std::decay_t<decltype(Map)>::mapped_type *>>>
        Fam;
    for (const auto &[Name, V] : Map) {
      std::string Base;
      std::vector<std::pair<std::string, std::string>> Labels;
      splitMetricName(Name, Base, Labels);
      Fam[Base].emplace_back(std::move(Labels), &V);
    }
    for (const auto &[Base, Variants] : Fam)
      Fn(Base, Variants);
  };

  ForFamilies(S.Counters, [&](const std::string &Base, const auto &Vars) {
    std::string N = promName(Base) + "_total";
    Out += "# TYPE " + N + " counter\n";
    for (const auto &[Labels, V] : Vars) {
      Out += N + promLabels(Labels) + " ";
      Out += std::to_string(*V);
      Out += '\n';
    }
  });
  ForFamilies(S.Gauges, [&](const std::string &Base, const auto &Vars) {
    std::string N = promName(Base);
    Out += "# TYPE " + N + " gauge\n";
    for (const auto &[Labels, V] : Vars) {
      Out += N + promLabels(Labels) + " ";
      promNum(Out, *V);
      Out += '\n';
    }
  });
  ForFamilies(S.Histograms, [&](const std::string &Base, const auto &Vars) {
    std::string N = promName(Base);
    Out += "# TYPE " + N + " histogram\n";
    for (const auto &[Labels, HPtr] : Vars) {
      const HistogramSnapshot &H = *HPtr;
      int64_t Cum = 0;
      for (size_t I = 0; I <= H.Bounds.size(); ++I) {
        Cum += H.Counts[I];
        std::string Le = "le=\"";
        if (I < H.Bounds.size()) {
          promNum(Le, H.Bounds[I]);
        } else {
          Le += "+Inf";
        }
        Le += '"';
        Out += N + "_bucket" + promLabels(Labels, Le) + " ";
        Out += std::to_string(Cum);
        Out += '\n';
      }
      Out += N + "_sum" + promLabels(Labels) + " ";
      promNum(Out, H.Sum);
      Out += '\n';
      // _count repeats the +Inf cumulative rather than re-reading the
      // atomic count: mid-update snapshots then still satisfy the
      // histogram invariant _count == bucket{le="+Inf"}.
      Out += N + "_count" + promLabels(Labels) + " ";
      Out += std::to_string(Cum);
      Out += '\n';
    }
  });

  if (SamplingProfiler *P = SamplingProfiler::active()) {
    SamplingSummary Sum = P->summary();
    Out += "# TYPE dmll_sampler_period_ms gauge\n";
    Out += "dmll_sampler_period_ms ";
    promNum(Out, Sum.PeriodMs);
    Out += '\n';
    Out += "# TYPE dmll_sampler_ticks_total counter\ndmll_sampler_ticks_"
           "total " +
           std::to_string(Sum.Ticks) + "\n";
    Out += "# TYPE dmll_samples_idle_total counter\ndmll_samples_idle_"
           "total " +
           std::to_string(Sum.IdleSamples) + "\n";
    Out += "# TYPE dmll_samples_total counter\n";
    for (const auto &[Key, NSamples] : Sum.Stacks) {
      // Key is "<phase>" or "<phase>;<loop>".
      size_t Semi = Key.find(';');
      std::vector<std::pair<std::string, std::string>> Labels;
      Labels.emplace_back("phase", Key.substr(0, Semi));
      if (Semi != std::string::npos)
        Labels.emplace_back("loop", Key.substr(Semi + 1));
      Out += "dmll_samples_total" + promLabels(Labels) + " " +
             std::to_string(NSamples) + "\n";
    }
  }
  return Out;
}

std::string dmll::renderPrometheus() {
  return renderPrometheus(MetricsRegistry::global());
}

const PromSample *
PromSnapshot::find(const std::string &Name,
                   const std::map<std::string, std::string> &Labels) const {
  for (const PromSample &S : Samples)
    if (S.Name == Name && S.Labels == Labels)
      return &S;
  return nullptr;
}

bool dmll::parsePrometheus(const std::string &Text, PromSnapshot &Out,
                           std::string *Err) {
  Out.Samples.clear();
  Out.Types.clear();
  std::istringstream In(Text);
  std::string Line;
  int LineNo = 0;
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = "line " + std::to_string(LineNo) + ": " + Msg;
    return false;
  };
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    if (Line[0] == '#') {
      std::istringstream LS(Line);
      std::string Hash, What, Name, Type;
      LS >> Hash >> What >> Name >> Type;
      if (What == "TYPE") {
        if (Name.empty() || Type.empty())
          return Fail("malformed TYPE line");
        Out.Types[Name] = Type;
      }
      continue; // comments / HELP lines
    }
    PromSample S;
    size_t I = 0;
    while (I < Line.size() && Line[I] != '{' && Line[I] != ' ')
      ++I;
    S.Name = Line.substr(0, I);
    if (S.Name.empty())
      return Fail("missing metric name");
    if (I < Line.size() && Line[I] == '{') {
      ++I;
      while (I < Line.size() && Line[I] != '}') {
        size_t Eq = Line.find('=', I);
        if (Eq == std::string::npos || Eq + 1 >= Line.size() ||
            Line[Eq + 1] != '"')
          return Fail("malformed label in " + S.Name);
        std::string Key = Line.substr(I, Eq - I);
        std::string Val;
        size_t J = Eq + 2;
        while (J < Line.size() && Line[J] != '"') {
          if (Line[J] == '\\' && J + 1 < Line.size()) {
            char C = Line[J + 1];
            Val += C == 'n' ? '\n' : C;
            J += 2;
          } else {
            Val += Line[J++];
          }
        }
        if (J >= Line.size())
          return Fail("unterminated label value in " + S.Name);
        S.Labels[Key] = Val;
        I = J + 1;
        if (I < Line.size() && Line[I] == ',')
          ++I;
      }
      if (I >= Line.size())
        return Fail("unterminated label set in " + S.Name);
      ++I; // '}'
    }
    while (I < Line.size() && Line[I] == ' ')
      ++I;
    if (I >= Line.size())
      return Fail("missing value for " + S.Name);
    std::string ValStr = Line.substr(I);
    if (ValStr == "+Inf") {
      S.Value = std::numeric_limits<double>::infinity();
    } else {
      try {
        S.Value = std::stod(ValStr);
      } catch (...) {
        return Fail("bad value \"" + ValStr + "\" for " + S.Name);
      }
    }
    Out.Samples.push_back(std::move(S));
  }
  return true;
}

std::vector<std::string> dmll::checkPrometheus(const std::string &Text) {
  std::vector<std::string> Problems;
  PromSnapshot Snap;
  std::string Err;
  if (!parsePrometheus(Text, Snap, &Err)) {
    Problems.push_back("parse error: " + Err);
    return Problems;
  }
  if (Snap.Samples.empty())
    Problems.push_back("no samples");
  auto Declared = [&](const std::string &Name) {
    if (Snap.Types.count(Name))
      return true;
    // histogram series share the family's TYPE declaration
    for (const char *Suffix : {"_bucket", "_sum", "_count"}) {
      size_t L = std::strlen(Suffix);
      if (Name.size() > L &&
          Name.compare(Name.size() - L, L, Suffix) == 0 &&
          Snap.Types.count(Name.substr(0, Name.size() - L)))
        return true;
    }
    return false;
  };
  for (const PromSample &S : Snap.Samples) {
    // Legal metric name: [a-zA-Z_:][a-zA-Z0-9_:]*
    bool LegalName = !S.Name.empty() &&
                     (std::isalpha(static_cast<unsigned char>(S.Name[0])) ||
                      S.Name[0] == '_' || S.Name[0] == ':');
    for (char C : S.Name)
      LegalName &= std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
                   C == ':';
    if (!LegalName)
      Problems.push_back("illegal metric name \"" + S.Name + "\"");
    if (!Declared(S.Name))
      Problems.push_back("series " + S.Name + " has no # TYPE declaration");
  }
  // Histogram invariants per family and label set (minus `le`).
  for (const auto &[Family, Type] : Snap.Types) {
    if (Type != "histogram")
      continue;
    // Bucket rows keyed by their non-le labels.
    std::map<std::string, std::vector<std::pair<double, double>>> Buckets;
    std::map<std::string, double> Counts;
    auto LabelKey = [](const PromSample &S) {
      std::string K;
      for (const auto &[L, V] : S.Labels)
        if (L != "le")
          K += L + "=" + V + ",";
      return K;
    };
    for (const PromSample &S : Snap.Samples) {
      if (S.Name == Family + "_bucket") {
        auto It = S.Labels.find("le");
        if (It == S.Labels.end()) {
          Problems.push_back(Family + "_bucket row without le label");
          continue;
        }
        double Le = It->second == "+Inf"
                        ? std::numeric_limits<double>::infinity()
                        : std::stod(It->second);
        Buckets[LabelKey(S)].emplace_back(Le, S.Value);
      } else if (S.Name == Family + "_count") {
        Counts[LabelKey(S)] = S.Value;
      }
    }
    for (auto &[Key, Rows] : Buckets) {
      std::sort(Rows.begin(), Rows.end(),
                [](const auto &A, const auto &B) { return A.first < B.first; });
      double Prev = 0;
      for (const auto &[Le, N] : Rows) {
        if (N + 1e-9 < Prev)
          Problems.push_back(Family + "{" + Key +
                             "} buckets are not cumulative");
        Prev = N;
      }
      if (Rows.empty() || !std::isinf(Rows.back().first)) {
        Problems.push_back(Family + "{" + Key + "} lacks a +Inf bucket");
        continue;
      }
      auto CIt = Counts.find(Key);
      if (CIt == Counts.end())
        Problems.push_back(Family + "{" + Key + "} lacks a _count series");
      else if (CIt->second != Rows.back().second)
        Problems.push_back(Family + "{" + Key +
                           "} _count != +Inf bucket count");
    }
  }
  return Problems;
}

//===----------------------------------------------------------------------===//
// LiveSnapshotter
//===----------------------------------------------------------------------===//

LiveSnapshotter::LiveSnapshotter(Options O) : Opts(std::move(O)) {
  if (Opts.PeriodMs <= 0)
    Opts.PeriodMs = 200;
  // Port 0 binds a kernel-assigned ephemeral port (boundPort() reads it
  // back), so concurrent test processes never collide on a fixed number.
  if (Opts.Port >= 0)
    ListenFd = net::listenLoopback(Opts.Port, 8, &BoundPort);
}

LiveSnapshotter::~LiveSnapshotter() {
  stop();
  if (ListenFd >= 0)
    ::close(ListenFd);
}

void LiveSnapshotter::start() {
  if (Running.exchange(true, std::memory_order_acq_rel))
    return;
  Thread = std::thread([this] { threadMain(); });
}

void LiveSnapshotter::stop() {
  if (!Running.exchange(false, std::memory_order_acq_rel))
    return;
  if (Thread.joinable())
    Thread.join();
  snapshotNow(); // the final state always lands on disk
}

std::string LiveSnapshotter::lastText() const {
  std::lock_guard<std::mutex> L(Mu);
  return Last;
}

void LiveSnapshotter::serve(const std::string &Text) {
  if (ListenFd < 0)
    return;
  // Drain every connection already queued; never block on accept.
  for (;;) {
    pollfd P{ListenFd, POLLIN, 0};
    if (::poll(&P, 1, 0) <= 0 || !(P.revents & POLLIN))
      return;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      return;
    // Read the client's request before answering: closing with unread
    // bytes in the receive buffer can send RST, which makes scrapers drop
    // the body we already wrote.
    net::drainRequest(Fd);
    std::string Resp =
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n"
        "Content-Length: " +
        std::to_string(Text.size()) + "\r\n\r\n" + Text;
    // MSG_NOSIGNAL + EINTR retry inside sendAll: a client that vanished
    // mid-response is this connection's problem, never the process's
    // (no SIGPIPE), and never aborts serving the remaining queue.
    if (!net::sendAll(Fd, Resp))
      MetricsRegistry::global().counter("telemetry.client_abort").inc();
    ::close(Fd);
  }
}

void LiveSnapshotter::cycle() {
  std::string Text = renderPrometheus(MetricsRegistry::global());
  std::map<std::string, int64_t> Now =
      MetricsRegistry::global().snapshot().Counters;
  {
    std::lock_guard<std::mutex> L(Mu);
    Last = Text;
    // Delta record for the event log: every counter that moved since the
    // previous cycle.
    if (EventLog *EL = EventLog::active()) {
      std::vector<EventArg> Args;
      Args.push_back(EventLog::num("snapshot", static_cast<double>(
                                                   Count.load() + 1)));
      for (const auto &[Name, V] : Now) {
        int64_t D = V - PrevCounters[Name];
        if (D != 0 && Args.size() < 24)
          Args.push_back(EventLog::num(Name, static_cast<double>(D)));
      }
      if (Args.size() > 1 || PrevCounters.empty())
        EL->emit(EventKind::MetricsSnapshot, {}, Args);
    }
    PrevCounters = std::move(Now);
  }
  if (!Opts.Path.empty()) {
    // Atomic replace: tailers and dmll-top never observe a torn file.
    std::string Tmp = Opts.Path + ".tmp";
    std::ofstream Out(Tmp, std::ios::binary);
    if (Out) {
      Out << Text;
      Out.close();
      if (Out)
        std::rename(Tmp.c_str(), Opts.Path.c_str());
    }
  }
  serve(Text);
  Count.fetch_add(1, std::memory_order_relaxed);
}

void LiveSnapshotter::snapshotNow() { cycle(); }

void LiveSnapshotter::threadMain() {
  using Clock = std::chrono::steady_clock;
  auto Period = std::chrono::duration<double, std::milli>(Opts.PeriodMs);
  while (Running.load(std::memory_order_acquire)) {
    auto Deadline = Clock::now() + Period;
    cycle();
    // Sleep in short slices so the endpoint answers promptly and stop()
    // does not wait a full period.
    while (Running.load(std::memory_order_acquire) &&
           Clock::now() < Deadline) {
      if (ListenFd >= 0) {
        pollfd P{ListenFd, POLLIN, 0};
        auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        Deadline - Clock::now())
                        .count();
        if (::poll(&P, 1, static_cast<int>(std::clamp<long long>(
                              Left, 1, 50))) > 0 &&
            (P.revents & POLLIN))
          serve(lastText());
      } else {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(
                std::min(50.0, Opts.PeriodMs)));
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// CLI wiring
//===----------------------------------------------------------------------===//

TelemetryCli dmll::telemetryCliArgs(int Argc, char **Argv) {
  TelemetryCli C;
  auto Value = [&](int &I) -> std::string {
    return I + 1 < Argc ? Argv[++I] : std::string();
  };
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--metrics-out")
      C.MetricsOut = Value(I);
    else if (A == "--metrics-live")
      C.MetricsLive = Value(I);
    else if (A == "--metrics-port")
      C.Port = std::atoi(Value(I).c_str());
    else if (A == "--events-out")
      C.EventsOut = Value(I);
    else if (A == "--sample")
      C.Sample = true;
    else if (A == "--sample-out") {
      C.SampleOut = Value(I);
      C.Sample = true;
    }
  }
  return C;
}

TelemetryScope::TelemetryScope(const TelemetryCli &C) : Cli(C) {
  if (!Cli.EventsOut.empty()) {
    Log = std::make_unique<EventLog>(Cli.EventsOut);
    if (Log->ok())
      LogAct = std::make_unique<EventLogActivation>(*Log);
    else
      std::fprintf(stderr, "telemetry: cannot open event log %s\n",
                   Cli.EventsOut.c_str());
  }
  if (Cli.Sample) {
    Prof = std::make_unique<SamplingProfiler>(Cli.SamplePeriodMs);
    ProfAct = std::make_unique<SamplerActivation>(*Prof);
  }
  if (!Cli.MetricsLive.empty() || Cli.Port >= 0) {
    LiveSnapshotter::Options O;
    O.PeriodMs = Cli.LivePeriodMs;
    O.Path = Cli.MetricsLive;
    O.Port = Cli.Port;
    Snap = std::make_unique<LiveSnapshotter>(O);
    Snap->start();
    // An ephemeral bind is useless unless someone can learn the port.
    if (Cli.Port == 0 && Snap->boundPort() > 0)
      std::fprintf(stderr, "telemetry: serving metrics on 127.0.0.1:%d\n",
                   Snap->boundPort());
  }
}

TelemetryScope::~TelemetryScope() {
  // Final outputs first, while the sampler is still active (so --metrics-out
  // includes the dmll_samples_total series) and the event log still open.
  if (Snap)
    Snap->stop();
  if (!Cli.MetricsOut.empty()) {
    std::ofstream Out(Cli.MetricsOut, std::ios::binary);
    if (Out)
      Out << renderPrometheus(MetricsRegistry::global());
    else
      std::fprintf(stderr, "telemetry: cannot write %s\n",
                   Cli.MetricsOut.c_str());
  }
  if (Prof && !Cli.SampleOut.empty() &&
      !Prof->writeCollapsed(Cli.SampleOut))
    std::fprintf(stderr, "telemetry: cannot write %s\n",
                 Cli.SampleOut.c_str());
  // Members tear down in reverse declaration order: snapshotter, sampler
  // activation, sampler, log activation, log.
}
