//===- observe/Trace.cpp ---------------------------------------*- C++ -*-===//

#include "observe/Trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

using namespace dmll;

TraceSession *TraceSession::Active = nullptr;

namespace {

/// One open span of the calling OS thread. TraceSpan is strictly scoped
/// (RAII), so stack discipline holds. Entries carry their session (so a
/// parent is only linked within the same session when activations nest or
/// swap mid-span) and their logical trace thread: worker 0 participates on
/// the driver's OS thread but records under its own tid, and linking its
/// chunk spans to the driver-tid loop span would put parent and child on
/// different trace rows.
struct OpenSpan {
  TraceSession *S;
  uint64_t Id;
  unsigned Tid;
};

thread_local std::vector<OpenSpan> OpenSpans;

/// Innermost open span of this OS thread with matching session and logical
/// tid (every open span on this OS thread contains "now", so any match is
/// interval-correct); 0 when none.
uint64_t currentParent(TraceSession *S, unsigned Tid) {
  for (auto It = OpenSpans.rbegin(); It != OpenSpans.rend(); ++It)
    if (It->S == S && It->Tid == Tid)
      return It->Id;
  return 0;
}

} // namespace

uint64_t TraceSession::allocId() {
  return NextId.fetch_add(1, std::memory_order_relaxed);
}

TraceSession::TraceSession() : Epoch(std::chrono::steady_clock::now()) {}

double TraceSession::nowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

void TraceSession::record(TraceEvent E) {
  std::lock_guard<std::mutex> Lock(Mu);
  Events.push_back(std::move(E));
}

void TraceSession::instant(
    std::string Name, std::string Cat,
    std::vector<std::pair<std::string, std::string>> Args, unsigned Tid) {
  TraceEvent E;
  E.Name = std::move(Name);
  E.Cat = std::move(Cat);
  E.StartMs = nowMs();
  E.Tid = Tid;
  E.Instant = true;
  E.Id = allocId();
  E.Parent = currentParent(this, Tid);
  E.Args = std::move(Args);
  record(std::move(E));
}

void TraceSession::counter(std::string Name, double Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%g", Value);
  instant(std::move(Name), "counter", {{"value", Buf}});
}

std::vector<TraceEvent> TraceSession::events() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Events;
}

size_t TraceSession::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Events.size();
}

TraceSession *TraceSession::active() { return Active; }

TraceActivation::TraceActivation(TraceSession &S) : Prev(TraceSession::Active) {
  TraceSession::Active = &S;
}

TraceActivation::~TraceActivation() { TraceSession::Active = Prev; }

TraceSpan::TraceSpan(std::string Name, std::string Cat, unsigned Tid)
    : TraceSpan(TraceSession::active(), std::move(Name), std::move(Cat), Tid) {
}

TraceSpan::TraceSpan(TraceSession *S, std::string Name, std::string Cat,
                     unsigned Tid)
    : S(S), Name(std::move(Name)), Cat(std::move(Cat)), Tid(Tid) {
  if (!S)
    return;
  Start = S->nowMs();
  Id = S->allocId();
  Parent = currentParent(S, Tid);
  OpenSpans.push_back({S, Id, Tid});
}

TraceSpan::~TraceSpan() {
  if (!S)
    return;
  OpenSpans.pop_back();
  TraceEvent E;
  E.Name = std::move(Name);
  E.Cat = std::move(Cat);
  E.StartMs = Start;
  E.DurMs = S->nowMs() - Start;
  E.Tid = Tid;
  E.Id = Id;
  E.Parent = Parent;
  E.Args = std::move(Args);
  S->record(std::move(E));
}

void TraceSpan::arg(std::string Key, std::string Value) {
  if (S)
    Args.emplace_back(std::move(Key), std::move(Value));
}

void TraceSpan::argInt(std::string Key, int64_t Value) {
  arg(std::move(Key), std::to_string(Value));
}

namespace {

std::string threadName(unsigned Tid) {
  if (Tid == 0)
    return "compiler/driver";
  return "worker " + std::to_string(Tid - 1);
}

/// Events of one tid sorted for tree reconstruction: by start time, longer
/// spans first on ties so parents precede their children.
std::vector<const TraceEvent *> sortedForTid(const std::vector<TraceEvent> &Es,
                                             unsigned Tid) {
  std::vector<const TraceEvent *> Out;
  for (const TraceEvent &E : Es)
    if (E.Tid == Tid)
      Out.push_back(&E);
  std::stable_sort(Out.begin(), Out.end(),
                   [](const TraceEvent *A, const TraceEvent *B) {
                     if (A->StartMs != B->StartMs)
                       return A->StartMs < B->StartMs;
                     return A->DurMs > B->DurMs;
                   });
  return Out;
}

void jsonEscape(std::ostringstream &OS, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\r':
      OS << "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
}

void jsonString(std::ostringstream &OS, const std::string &S) {
  OS << '"';
  jsonEscape(OS, S);
  OS << '"';
}

} // namespace

std::string TraceSession::renderText() const {
  std::vector<TraceEvent> Es = events();
  std::vector<unsigned> Tids;
  for (const TraceEvent &E : Es)
    if (std::find(Tids.begin(), Tids.end(), E.Tid) == Tids.end())
      Tids.push_back(E.Tid);
  std::sort(Tids.begin(), Tids.end());

  // Depth = length of the explicit parent chain (0 for roots and events
  // whose parent was recorded through raw record() without an id).
  std::map<uint64_t, uint64_t> ParentOf;
  for (const TraceEvent &E : Es)
    if (E.Id)
      ParentOf[E.Id] = E.Parent;
  auto DepthOf = [&](const TraceEvent *E) {
    size_t D = 0;
    uint64_t P = E->Parent;
    while (P) {
      ++D;
      auto It = ParentOf.find(P);
      P = It != ParentOf.end() ? It->second : 0;
    }
    return D;
  };

  std::ostringstream OS;
  for (unsigned Tid : Tids) {
    OS << "[" << threadName(Tid) << "]\n";
    for (const TraceEvent *E : sortedForTid(Es, Tid)) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%9.3fms ", E->StartMs);
      OS << Buf;
      for (size_t D = DepthOf(E); D > 0; --D)
        OS << "  ";
      OS << E->Name;
      if (!E->Instant) {
        std::snprintf(Buf, sizeof(Buf), " (%.3fms)", E->DurMs);
        OS << Buf;
      }
      for (const auto &[K, V] : E->Args)
        OS << " " << K << "=" << V;
      OS << "\n";
    }
  }
  return OS.str();
}

std::string TraceSession::renderChromeJson() const {
  std::vector<TraceEvent> Es = events();
  std::ostringstream OS;
  OS << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  auto Sep = [&] {
    if (!First)
      OS << ",";
    First = false;
    OS << "\n";
  };
  // Thread-name metadata so chrome://tracing labels the rows.
  std::map<unsigned, bool> Seen;
  for (const TraceEvent &E : Es)
    Seen[E.Tid] = true;
  for (const auto &[Tid, Unused] : Seen) {
    (void)Unused;
    Sep();
    OS << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << Tid
       << ",\"args\":{\"name\":";
    jsonString(OS, threadName(Tid));
    OS << "}}";
  }
  for (const TraceEvent &E : Es) {
    Sep();
    bool IsCounter = E.Cat == "counter";
    OS << "{\"name\":";
    jsonString(OS, E.Name);
    OS << ",\"cat\":";
    jsonString(OS, E.Cat.empty() ? "trace" : E.Cat);
    OS << ",\"ph\":\"" << (IsCounter ? "C" : E.Instant ? "i" : "X") << "\"";
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.3f", E.StartMs * 1000.0);
    OS << ",\"ts\":" << Buf;
    if (!E.Instant && !IsCounter) {
      std::snprintf(Buf, sizeof(Buf), "%.3f", E.DurMs * 1000.0);
      OS << ",\"dur\":" << Buf;
    }
    if (E.Instant && !IsCounter)
      OS << ",\"s\":\"t\"";
    OS << ",\"pid\":1,\"tid\":" << E.Tid;
    if (!E.Args.empty()) {
      OS << ",\"args\":{";
      bool FirstArg = true;
      for (const auto &[K, V] : E.Args) {
        if (!FirstArg)
          OS << ",";
        FirstArg = false;
        jsonString(OS, K);
        OS << ":";
        // Counters must carry numeric args for the Chrome counter track.
        if (IsCounter && K == "value")
          OS << V;
        else
          jsonString(OS, V);
      }
      OS << "}";
    }
    OS << "}";
  }
  OS << "\n]}\n";
  return OS.str();
}

bool TraceSession::writeChromeJson(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << renderChromeJson();
  return static_cast<bool>(Out);
}

std::string dmll::traceArgPath(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strncmp(A, "--trace-out=", 12) == 0)
      return A + 12;
    if (std::strcmp(A, "--trace-out") == 0 && I + 1 < Argc)
      return Argv[I + 1];
  }
  return "";
}
