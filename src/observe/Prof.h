//===- observe/Prof.h - Per-thread hardware counter probes -----*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sub-wall-clock visibility into *why* a loop was fast or slow: each
/// executor thread owns a lazily opened `perf_event_open` group (cycles,
/// instructions, LLC misses, branch misses) read as one syscall per probe.
/// When hardware events are unavailable — no PMU in the VM, restrictive
/// perf_event_paranoid, non-Linux hosts — probes degrade to a portable
/// timing + getrusage fallback (per-thread user/system CPU time, page
/// faults, context switches), so CounterSample.Hw tells consumers which
/// half of the record to trust. docs/PROFILING.md documents the exact
/// semantics of every field.
///
/// Usage is snapshot-subtract: `ThreadCounters::now()` returns cumulative
/// per-thread readings, and the delta of two snapshots brackets a region.
/// The interpreter and kernel VM bracket whole loops on the driver thread;
/// ThreadPool brackets each chunk body on its worker thread and
/// accumulates the deltas into WorkerStats (observe/Metrics.h), so a
/// parallel loop's counters are the sum of real per-chunk work, not a
/// driver-thread approximation.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_OBSERVE_PROF_H
#define DMLL_OBSERVE_PROF_H

#include <cstdint>
#include <string>

namespace dmll {

/// One cumulative (or, after subtraction, interval) counter reading for a
/// single thread. The rusage-derived fields are always populated on Linux;
/// the four hardware fields are meaningful only when Hw is true.
struct CounterSample {
  bool Hw = false; ///< hardware counter fields are valid
  int64_t Cycles = 0;
  int64_t Instructions = 0;
  int64_t LlcMisses = 0;
  int64_t BranchMisses = 0;
  // Portable fallback (also populated alongside hardware counters).
  double UserMs = 0; ///< per-thread user CPU time
  double SysMs = 0;  ///< per-thread system CPU time
  int64_t MinorFaults = 0;
  int64_t MajorFaults = 0;
  int64_t CtxSwitches = 0; ///< voluntary + involuntary

  /// Interval between two cumulative snapshots (this - Earlier). Hw only if
  /// both sides carried hardware values.
  CounterSample operator-(const CounterSample &Earlier) const;

  /// Accumulates another interval into this one. Hw degrades to false if
  /// either side lacks hardware values while the other has any (mixed
  /// sums would silently undercount).
  void add(const CounterSample &O);

  /// Instructions per cycle; 0 when not meaningful.
  double ipc() const {
    return Hw && Cycles > 0
               ? static_cast<double>(Instructions) / static_cast<double>(Cycles)
               : 0.0;
  }
};

/// Per-thread counter access. The first now() on a thread opens that
/// thread's perf event group (or records that none is available); the group
/// is closed when the thread exits.
class ThreadCounters {
public:
  /// Cumulative readings for the calling thread since its first probe.
  static CounterSample now();

  /// True if this process can open the hardware event group (checked once,
  /// on the first thread to ask). False means every sample is
  /// fallback-only.
  static bool hardwareAvailable();
};

/// One-line description of the active counter source for reports:
/// "perf_event(cycles,instructions,llc-misses,branch-misses)" or
/// "fallback(getrusage)".
std::string counterSourceName();

} // namespace dmll

#endif // DMLL_OBSERVE_PROF_H
