//===- observe/Trace.h - Compiler/runtime trace sessions -------*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability substrate behind docs/OBSERVABILITY.md: a TraceSession
/// records an ordered tree of timed events (compiler phases, rewrite-rule
/// firings, analysis runs, codegen steps, executor chunk spans) that can be
/// rendered as an indented text tree or exported as Chrome-trace-format
/// JSON for chrome://tracing / Perfetto.
///
/// Instrumentation uses the LLVM time-trace idiom: one session is made
/// *active* (TraceActivation, RAII) and instrumented code records into it
/// through TraceSpan / TraceSession::active() with zero plumbing; when no
/// session is active every probe is a cheap no-op. Recording is
/// mutex-protected so executor worker threads may record concurrently;
/// activation itself must happen while single-threaded (before workers
/// spawn).
///
/// Event naming convention (see docs/OBSERVABILITY.md for the full table):
/// dotted lowercase `<area>.<step>`, e.g. "compile.fusion",
/// "analysis.partitioning", "rewrite.groupby-reduce", "exec.chunk". The
/// category groups events for filtering: "phase", "pass", "rewrite",
/// "analysis", "codegen", "exec", "counter".
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_OBSERVE_TRACE_H
#define DMLL_OBSERVE_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dmll {

/// One completed (or instantaneous) event. Durations are derived, not open:
/// spans record themselves on close. Nesting is explicit — every span gets
/// a session-unique Id at open, and openings/instants link to the innermost
/// open span of the same OS thread, session, and logical trace thread (Tid)
/// as Parent — so renderers never reconstruct parentage from timestamps,
/// and the invariant that a parent's interval contains its children's on
/// the same trace row is checkable (tests/ObserveTest.cpp) rather than a
/// rendering heuristic.
struct TraceEvent {
  std::string Name; ///< dotted name, e.g. "compile.fusion"
  std::string Cat;  ///< "phase" | "pass" | "rewrite" | "analysis" |
                    ///< "codegen" | "exec" | "counter" | ...
  double StartMs = 0; ///< milliseconds since the session epoch
  double DurMs = 0;   ///< 0 for instants and counters
  unsigned Tid = 0;   ///< 0 = compile/driver thread; executor worker W is W+1
  bool Instant = false; ///< zero-duration marker (Chrome phase "i" / "C")
  uint64_t Id = 0;     ///< session-unique span id (0 only for raw record()s)
  uint64_t Parent = 0; ///< Id of the enclosing span on this thread; 0 = root
  /// Extra metadata: counter values, IR node counts, rule summaries.
  std::vector<std::pair<std::string, std::string>> Args;
};

/// An append-only event log with a steady-clock epoch. Sessions are created
/// by tools (benches, examples, tests), activated for a region, and
/// exported at the end.
class TraceSession {
public:
  TraceSession();

  /// Milliseconds since this session was constructed.
  double nowMs() const;

  /// Appends one event. Thread-safe.
  void record(TraceEvent E);

  /// Records a zero-duration marker event.
  void instant(std::string Name, std::string Cat,
               std::vector<std::pair<std::string, std::string>> Args = {},
               unsigned Tid = 0);

  /// Records a named counter sample (rendered as a Chrome "C" event).
  void counter(std::string Name, double Value);

  /// Snapshot of all events recorded so far, in recording order.
  std::vector<TraceEvent> events() const;

  /// Number of events recorded so far.
  size_t size() const;

  /// The currently active session, or nullptr. Probes (TraceSpan and the
  /// instrumentation in compiler/runtime code) no-op when this is null.
  static TraceSession *active();

  /// Allocates a session-unique span id (thread-safe).
  uint64_t allocId();

  /// Indented per-thread text tree (nesting from explicit parent ids).
  std::string renderText() const;

  /// Chrome trace format: {"traceEvents": [...]} with complete ("X"),
  /// instant ("i"), counter ("C") and thread-name metadata ("M") records.
  /// Loadable by chrome://tracing and https://ui.perfetto.dev.
  std::string renderChromeJson() const;

  /// Writes renderChromeJson() to \p Path; returns false on I/O failure.
  bool writeChromeJson(const std::string &Path) const;

private:
  friend class TraceActivation;
  std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex Mu;
  std::vector<TraceEvent> Events;
  std::atomic<uint64_t> NextId{1};
  static TraceSession *Active;
};

/// RAII: makes a session the active one for its scope (restoring the
/// previous active session on destruction). Activate while single-threaded.
class TraceActivation {
public:
  explicit TraceActivation(TraceSession &S);
  ~TraceActivation();
  TraceActivation(const TraceActivation &) = delete;
  TraceActivation &operator=(const TraceActivation &) = delete;

private:
  TraceSession *Prev;
};

/// RAII timed span recorded into the active session (or an explicit one) at
/// scope exit. Args attached before destruction land on the event.
class TraceSpan {
public:
  /// Span against the active session; no-op when none is active.
  TraceSpan(std::string Name, std::string Cat, unsigned Tid = 0);
  /// Span against an explicit session (\p S may be null: no-op).
  TraceSpan(TraceSession *S, std::string Name, std::string Cat,
            unsigned Tid = 0);
  ~TraceSpan();
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// Attaches a string argument to the pending event.
  void arg(std::string Key, std::string Value);
  /// Attaches an integer argument to the pending event.
  void argInt(std::string Key, int64_t Value);

  /// True if this span will actually record (a session is attached).
  bool live() const { return S != nullptr; }

  /// This span's session-unique id (0 when not live).
  uint64_t id() const { return Id; }

private:
  TraceSession *S;
  std::string Name, Cat;
  unsigned Tid;
  double Start = 0;
  uint64_t Id = 0;     ///< allocated at open
  uint64_t Parent = 0; ///< innermost open span on this thread at open time
  std::vector<std::pair<std::string, std::string>> Args;
};

/// Parses `--trace-out=PATH` / `--trace-out PATH` out of a main()'s argv
/// (the convention every bench/example follows); returns "" when absent.
std::string traceArgPath(int Argc, char **Argv);

} // namespace dmll

#endif // DMLL_OBSERVE_TRACE_H
