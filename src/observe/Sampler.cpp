//===- observe/Sampler.cpp -------------------------------------*- C++ -*-===//

#include "observe/Sampler.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <unordered_set>

using namespace dmll;

namespace {

/// Process-wide slot registry. Slots are heap objects that never free, so
/// the sampler thread can read a slot even while its owning thread exits;
/// exited threads' slots are recycled through the InUse flag.
struct SlotRegistry {
  std::mutex Mu;
  std::vector<std::unique_ptr<SampleSlot>> Slots;

  static SlotRegistry &get() {
    static SlotRegistry *R = new SlotRegistry; // never destroyed
    return *R;
  }

  SampleSlot *acquire() {
    std::lock_guard<std::mutex> L(Mu);
    for (auto &S : Slots)
      if (!S->InUse.load(std::memory_order_relaxed)) {
        S->Phase.store(nullptr, std::memory_order_relaxed);
        S->Loop.store(nullptr, std::memory_order_relaxed);
        S->InUse.store(true, std::memory_order_release);
        return S.get();
      }
    Slots.push_back(std::make_unique<SampleSlot>());
    Slots.back()->InUse.store(true, std::memory_order_release);
    return Slots.back().get();
  }
};

/// Thread-local slot handle; releases the slot when the thread exits.
struct SlotHandle {
  SampleSlot *S;
  SlotHandle() : S(SlotRegistry::get().acquire()) {}
  ~SlotHandle() {
    S->Phase.store(nullptr, std::memory_order_relaxed);
    S->Loop.store(nullptr, std::memory_order_relaxed);
    S->InUse.store(false, std::memory_order_release);
  }
};

SampleSlot *mySlot() {
  thread_local SlotHandle H;
  return H.S;
}

std::atomic<SamplingProfiler *> ActiveProfiler{nullptr};

} // namespace

const char *dmll::internSampleName(const std::string &S) {
  static std::mutex Mu;
  // node-based: element addresses are stable across rehash and insert.
  static std::unordered_set<std::string> *Table =
      new std::unordered_set<std::string>; // never destroyed
  std::lock_guard<std::mutex> L(Mu);
  return Table->insert(S).first->c_str();
}

SampleScope::SampleScope(const char *Phase, const char *Loop) {
  S = mySlot();
  PrevPhase = S->Phase.load(std::memory_order_relaxed);
  PrevLoop = S->Loop.load(std::memory_order_relaxed);
  if (Loop)
    S->Loop.store(Loop, std::memory_order_relaxed);
  S->Phase.store(Phase, std::memory_order_release);
}

SampleScope::~SampleScope() {
  S->Phase.store(PrevPhase, std::memory_order_relaxed);
  S->Loop.store(PrevLoop, std::memory_order_release);
}

SamplingProfiler::SamplingProfiler(double PeriodMs)
    : Period(PeriodMs > 0 ? PeriodMs : 1.0) {}

SamplingProfiler::~SamplingProfiler() { stop(); }

void SamplingProfiler::start() {
  if (Running.exchange(true, std::memory_order_acq_rel))
    return;
  Thread = std::thread([this] { threadMain(); });
}

void SamplingProfiler::stop() {
  if (!Running.exchange(false, std::memory_order_acq_rel))
    return;
  if (Thread.joinable())
    Thread.join();
}

void SamplingProfiler::threadMain() {
  SlotRegistry &Reg = SlotRegistry::get();
  auto PeriodDur = std::chrono::duration<double, std::milli>(Period);
  std::vector<std::pair<const char *, const char *>> Seen;
  while (Running.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(PeriodDur);
    Seen.clear();
    int64_t TickIdle = 0;
    {
      std::lock_guard<std::mutex> L(Reg.Mu);
      for (const auto &S : Reg.Slots) {
        if (!S->InUse.load(std::memory_order_acquire))
          continue;
        const char *Phase = S->Phase.load(std::memory_order_acquire);
        const char *Loop = S->Loop.load(std::memory_order_relaxed);
        if (Phase)
          Seen.emplace_back(Phase, Loop);
        else
          ++TickIdle;
      }
    }
    std::lock_guard<std::mutex> L(Mu);
    ++Ticks;
    Idle += TickIdle;
    Samples += static_cast<int64_t>(Seen.size());
    for (const auto &PL : Seen)
      ++Buckets[PL];
  }
}

SamplingSummary SamplingProfiler::summary() const {
  SamplingSummary R;
  R.Enabled = true;
  R.PeriodMs = Period;
  std::map<std::string, int64_t> Keyed;
  {
    std::lock_guard<std::mutex> L(Mu);
    R.Ticks = Ticks;
    R.Samples = Samples;
    R.IdleSamples = Idle;
    for (const auto &[PL, N] : Buckets) {
      std::string Key = PL.first;
      if (PL.second) {
        Key += ';';
        Key += PL.second;
      }
      Keyed[Key] += N;
    }
  }
  R.Stacks.assign(Keyed.begin(), Keyed.end());
  return R;
}

SamplingSummary dmll::samplingDelta(const SamplingSummary &Before,
                                    const SamplingSummary &After) {
  SamplingSummary R;
  R.Enabled = After.Enabled;
  R.PeriodMs = After.PeriodMs;
  R.Ticks = After.Ticks - Before.Ticks;
  R.Samples = After.Samples - Before.Samples;
  R.IdleSamples = After.IdleSamples - Before.IdleSamples;
  std::map<std::string, int64_t> Prev(Before.Stacks.begin(),
                                      Before.Stacks.end());
  for (const auto &[Key, N] : After.Stacks) {
    int64_t D = N - Prev[Key];
    if (D > 0)
      R.Stacks.emplace_back(Key, D);
  }
  return R;
}

std::string SamplingProfiler::collapsed() const {
  SamplingSummary S = summary();
  std::string Out;
  for (const auto &[Key, N] : S.Stacks) {
    Out += "dmll;";
    Out += Key;
    Out += ' ';
    Out += std::to_string(N);
    Out += '\n';
  }
  if (S.IdleSamples > 0)
    Out += "dmll;(idle) " + std::to_string(S.IdleSamples) + "\n";
  return Out;
}

bool SamplingProfiler::writeCollapsed(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << collapsed();
  return static_cast<bool>(Out);
}

SamplingProfiler *SamplingProfiler::active() {
  return ActiveProfiler.load(std::memory_order_acquire);
}

SamplerActivation::SamplerActivation(SamplingProfiler &P) : Mine(P) {
  Prev = ActiveProfiler.exchange(&P, std::memory_order_acq_rel);
  P.start();
}

SamplerActivation::~SamplerActivation() {
  Mine.stop();
  ActiveProfiler.store(Prev, std::memory_order_release);
}
