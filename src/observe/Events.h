//===- observe/Events.h - Structured JSONL event log -----------*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured runtime event log (`dmll-events-v1`): an append-only JSONL
/// stream of execution milestones — run start/stop, closed-loop begin/end
/// with signature, engine fallbacks, tuner decisions applied, metrics
/// snapshots, and traps — each stamped with a monotonic timestamp and a
/// small per-thread id. Unlike the Chrome trace (observe/Trace.h), which is
/// buffered in memory and exported after the run, the event log is written
/// as execution happens, so a tail/service-side consumer sees milestones
/// live and a trap still leaves every event up to the abort on disk.
///
/// One line per event: `{"ts_ms":..,"tid":..,"type":"..",...}`. The first
/// line is always a `log.open` record carrying `"schema":"dmll-events-v1"`.
/// Timestamps are milliseconds since the log was opened (steady clock), and
/// writes are serialized, so `ts_ms` is globally non-decreasing — a property
/// validateEventLog() checks along with schema conformance (see
/// docs/TELEMETRY.md for the full schema).
///
/// Like TraceSession, an EventLog becomes the process-wide sink through an
/// RAII EventLogActivation; emission sites test EventLog::active() and stay
/// branch-cheap when no log is active. Activation also hooks the fatal
/// error path, so every trap emits a `trap` event and flushes at the trap
/// site. Recoverable traps (support/Error.h TrapError) then *continue* the
/// stream — the executor closes the bracket with a `run.stop` carrying a
/// non-ok status and later runs keep appending; only aborting fatalError
/// invariants end the log at the trap line.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_OBSERVE_EVENTS_H
#define DMLL_OBSERVE_EVENTS_H

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dmll {

/// Small, stable per-thread id for telemetry records: 0, 1, 2, ... in order
/// of first use within the process (the driver is typically 0). Distinct
/// from pthread ids, which are neither small nor stable across runs.
int telemetryThreadId();

/// Event kinds of the dmll-events-v1 schema.
enum class EventKind {
  LogOpen,        ///< first line of every log; carries the schema tag
  RunStart,       ///< executeProgram began an evaluation
  RunStop,        ///< executeProgram finished (args: millis)
  LoopBegin,      ///< a closed multiloop started (args: iters)
  LoopEnd,        ///< it finished (args: engine, millis, parallel)
  EngineFallback, ///< kernel compilation rejected a loop (args: reason)
  TuneDecision,   ///< a per-loop tuning decision was applied
  MetricsSnapshot,///< snapshotter delta record (args: changed counters)
  Trap,           ///< fatalError fired (args: message); log flushes first
};

const char *eventKindName(EventKind K);

/// One extra key/value on an event line; numbers are emitted as JSON
/// numbers, strings as escaped JSON strings.
struct EventArg {
  std::string Key;
  std::string Str;
  double Num = 0;
  bool IsNum = false;
};

/// An open dmll-events-v1 log file. Thread-safe; every emit appends one
/// line and flushes (events are per-loop-coarse, not per-element, so the
/// stream stays cheap while remaining tail-able and abort-safe).
class EventLog {
public:
  /// Opens (truncates) \p Path and writes the log.open header line.
  explicit EventLog(const std::string &Path);
  ~EventLog();

  bool ok() const { return F != nullptr; }
  const std::string &path() const { return LogPath; }
  /// Events written so far, header included.
  int64_t size() const;

  /// Appends one event line. \p Loop is the loop signature ("" omits the
  /// field); \p Args are extra key/values.
  void emit(EventKind K, const std::string &Loop = {},
            const std::vector<EventArg> &Args = {});
  void flush();

  /// Convenience EventArg builders.
  static EventArg num(std::string Key, double V);
  static EventArg str(std::string Key, std::string V);

  /// The process-wide active log, or null. Set by EventLogActivation.
  static EventLog *active();

private:
  std::FILE *F = nullptr;
  std::string LogPath;
  std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex Mu;
  int64_t Count = 0;
};

/// RAII activation: installs \p L as the process-wide event sink and hooks
/// fatalError to emit a trap event (and flush) before aborting. Restores
/// the previous sink/hook on destruction.
class EventLogActivation {
public:
  explicit EventLogActivation(EventLog &L);
  ~EventLogActivation();

private:
  EventLog *Prev;
};

/// Result of validating a JSONL file against dmll-events-v1.
struct EventLogCheck {
  bool Ok = true;
  std::vector<std::string> Errors;
  std::map<std::string, int64_t> CountsByType;
  int64_t Lines = 0;
};

/// Validates \p Path against the dmll-events-v1 schema: every line parses
/// as a JSON object with ts_ms/tid/type, the first line is log.open with
/// the right schema tag, ts_ms is globally non-decreasing, loop begin/end
/// nest per thread with matching signatures, run depth never goes
/// negative, and any run.stop status is a known ExecStatus name. Traps may
/// appear mid-stream: a trap clears every open loop stack (the unwind
/// emits no loop.end; straggling sibling loop.end events are absorbed) and
/// the log may continue with recovery events afterwards. At end of file
/// the run.start/run.stop imbalance may not exceed the trap count, and
/// every loop opened after the last trap must have closed.
EventLogCheck validateEventLog(const std::string &Path);

} // namespace dmll

#endif // DMLL_OBSERVE_EVENTS_H
