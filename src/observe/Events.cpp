//===- observe/Events.cpp --------------------------------------*- C++ -*-===//

#include "observe/Events.h"

#include "support/Error.h"
#include "support/Json.h"

#include <atomic>
#include <cstring>
#include <fstream>

using namespace dmll;

int dmll::telemetryThreadId() {
  static std::atomic<int> Next{0};
  thread_local int Id = Next.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

const char *dmll::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::LogOpen:
    return "log.open";
  case EventKind::RunStart:
    return "run.start";
  case EventKind::RunStop:
    return "run.stop";
  case EventKind::LoopBegin:
    return "loop.begin";
  case EventKind::LoopEnd:
    return "loop.end";
  case EventKind::EngineFallback:
    return "engine.fallback";
  case EventKind::TuneDecision:
    return "tune.decision";
  case EventKind::MetricsSnapshot:
    return "metrics.snapshot";
  case EventKind::Trap:
    return "trap";
  }
  return "unknown";
}

namespace {

std::atomic<EventLog *> ActiveLog{nullptr};

void appendEscaped(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void trapHook(const std::string &Msg) {
  if (EventLog *L = EventLog::active()) {
    L->emit(EventKind::Trap, {}, {EventLog::str("message", Msg)});
    L->flush();
  }
}

} // namespace

EventLog::EventLog(const std::string &Path) : LogPath(Path) {
  F = std::fopen(Path.c_str(), "w");
  Epoch = std::chrono::steady_clock::now();
  if (F)
    emit(EventKind::LogOpen, {},
         {str("schema", "dmll-events-v1")});
}

EventLog::~EventLog() {
  if (F)
    std::fclose(F);
}

int64_t EventLog::size() const {
  std::lock_guard<std::mutex> L(Mu);
  return Count;
}

EventArg EventLog::num(std::string Key, double V) {
  EventArg A;
  A.Key = std::move(Key);
  A.Num = V;
  A.IsNum = true;
  return A;
}

EventArg EventLog::str(std::string Key, std::string V) {
  EventArg A;
  A.Key = std::move(Key);
  A.Str = std::move(V);
  return A;
}

void EventLog::emit(EventKind K, const std::string &Loop,
                    const std::vector<EventArg> &Args) {
  if (!F)
    return;
  int Tid = telemetryThreadId();
  std::string Line;
  Line.reserve(96);
  std::lock_guard<std::mutex> L(Mu);
  // Timestamp under the lock, so line order and ts_ms order agree — the
  // validator checks global monotonicity.
  double Ts = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - Epoch)
                  .count();
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "{\"ts_ms\":%.3f,\"tid\":%d,\"type\":", Ts,
                Tid);
  Line += Buf;
  appendEscaped(Line, eventKindName(K));
  if (!Loop.empty()) {
    Line += ",\"loop\":";
    appendEscaped(Line, Loop);
  }
  for (const EventArg &A : Args) {
    Line += ",";
    appendEscaped(Line, A.Key);
    Line += ":";
    if (A.IsNum) {
      std::snprintf(Buf, sizeof(Buf), "%.6g", A.Num);
      Line += Buf;
    } else {
      appendEscaped(Line, A.Str);
    }
  }
  Line += "}\n";
  std::fwrite(Line.data(), 1, Line.size(), F);
  std::fflush(F);
  ++Count;
}

void EventLog::flush() {
  std::lock_guard<std::mutex> L(Mu);
  if (F)
    std::fflush(F);
}

EventLog *EventLog::active() {
  return ActiveLog.load(std::memory_order_acquire);
}

EventLogActivation::EventLogActivation(EventLog &L) {
  Prev = ActiveLog.exchange(&L, std::memory_order_release);
  setFatalErrorHook(trapHook);
}

EventLogActivation::~EventLogActivation() {
  ActiveLog.store(Prev, std::memory_order_release);
  if (!Prev)
    setFatalErrorHook(nullptr);
}

EventLogCheck dmll::validateEventLog(const std::string &Path) {
  EventLogCheck R;
  auto Fail = [&](const std::string &Msg) {
    R.Ok = false;
    if (R.Errors.size() < 20)
      R.Errors.push_back(Msg);
  };
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Fail("cannot open " + Path);
    return R;
  }
  static const char *Known[] = {
      "log.open",      "run.start",       "run.stop",
      "loop.begin",    "loop.end",        "engine.fallback",
      "tune.decision", "metrics.snapshot", "trap"};
  double LastTs = -1;
  int64_t RunStarts = 0, RunStops = 0, RunDepth = 0, Traps = 0;
  // Per-tid stack of open loop signatures (loop.begin/loop.end nest on the
  // thread that executes the loop).
  std::map<int64_t, std::vector<std::string>> OpenLoops;
  // Loops a trap abandoned per tid: a recoverable trap unwinds out of open
  // loops without emitting loop.end, so the trap event clears every open
  // stack. A sibling worker already inside a loop when the trap line landed
  // still emits its loop.end afterwards (per-tid program order puts such
  // stragglers before any post-trap loop.begin on that tid); this counter
  // is the per-tid allowance for them.
  std::map<int64_t, int64_t> TrapCleared;
  std::string Line;
  while (std::getline(In, Line)) {
    ++R.Lines;
    if (Line.empty())
      continue;
    std::string Where = "line " + std::to_string(R.Lines);
    json::JValue V;
    if (!json::parse(Line, V)) {
      Fail(Where + ": not valid JSON");
      continue;
    }
    if (V.K != json::JValue::Object) {
      Fail(Where + ": not a JSON object");
      continue;
    }
    const json::JValue *Ts = V.field("ts_ms");
    const json::JValue *Tid = V.field("tid");
    const json::JValue *TypeV = V.field("type");
    if (!Ts || Ts->K != json::JValue::Number)
      Fail(Where + ": missing numeric ts_ms");
    if (!Tid || Tid->K != json::JValue::Number)
      Fail(Where + ": missing numeric tid");
    if (!TypeV || TypeV->K != json::JValue::String) {
      Fail(Where + ": missing type");
      continue;
    }
    const std::string &Type = TypeV->Str;
    bool KnownType = false;
    for (const char *T : Known)
      KnownType |= Type == T;
    if (!KnownType)
      Fail(Where + ": unknown event type \"" + Type + "\"");
    ++R.CountsByType[Type];
    if (Ts && Ts->K == json::JValue::Number) {
      if (Ts->Num < LastTs)
        Fail(Where + ": ts_ms went backwards");
      LastTs = std::max(LastTs, Ts->Num);
    }
    if (R.Lines == 1) {
      if (Type != "log.open")
        Fail("line 1: first event must be log.open");
      if (V.strField("schema") != "dmll-events-v1")
        Fail("line 1: log.open must carry schema \"dmll-events-v1\"");
    }
    if (Type == "run.start") {
      ++RunStarts;
      ++RunDepth;
    } else if (Type == "run.stop") {
      ++RunStops;
      if (--RunDepth < 0)
        Fail(Where + ": run.stop without an open run.start");
      // A recovered run closes its bracket with an explicit status; when
      // present it must be one of the ExecStatus names (runtime/Cancel.h).
      std::string Status = V.strField("status");
      if (!Status.empty() && Status != "ok" && Status != "trapped" &&
          Status != "deadline_exceeded" && Status != "budget_exceeded")
        Fail(Where + ": run.stop with unknown status \"" + Status + "\"");
    } else if (Type == "trap") {
      // A trap unwinds out of every open loop without emitting loop.end;
      // the stream legitimately continues afterwards (run.stop with a
      // non-ok status, then fresh runs on the recovered executor).
      ++Traps;
      for (auto &[T, Stack] : OpenLoops) {
        TrapCleared[T] += static_cast<int64_t>(Stack.size());
        Stack.clear();
      }
    } else if (Type == "loop.begin" || Type == "loop.end") {
      const json::JValue *Loop = V.field("loop");
      int64_t T = Tid && Tid->K == json::JValue::Number
                      ? static_cast<int64_t>(Tid->Num)
                      : -1;
      if (!Loop || Loop->K != json::JValue::String) {
        Fail(Where + ": " + Type + " without loop signature");
      } else if (Type == "loop.begin") {
        OpenLoops[T].push_back(Loop->Str);
      } else {
        std::vector<std::string> &Stack = OpenLoops[T];
        if (!Stack.empty() && Stack.back() == Loop->Str) {
          Stack.pop_back();
        } else if (Stack.empty() && TrapCleared[T] > 0) {
          // Straggler loop.end whose loop.begin a trap cleared: a sibling
          // worker finishing the loop it was already inside.
          --TrapCleared[T];
        } else if (Stack.empty()) {
          Fail(Where + ": loop.end without matching loop.begin on tid " +
               std::to_string(T));
        } else {
          Fail(Where + ": loop.end signature \"" + Loop->Str +
               "\" does not match open loop \"" + Stack.back() + "\"");
        }
      }
    }
  }
  if (R.Lines == 0)
    Fail("empty event log");
  // Loops opened after the last trap must balance; loops a trap unwound
  // were already cleared above. An aborting (non-recovered) trap kills the
  // process right after the trap line, so its stacks are cleared too.
  for (const auto &[Tid, Stack] : OpenLoops)
    if (!Stack.empty())
      Fail("tid " + std::to_string(Tid) + " ended with " +
           std::to_string(Stack.size()) + " unclosed loop.begin event(s)");
  // Every trap may strand at most one run bracket (the process dying, or a
  // writer that never emits the closing run.stop); anything beyond that is
  // a real imbalance.
  if (RunStarts - RunStops > Traps)
    Fail("run.start/run.stop imbalance: " + std::to_string(RunStarts) +
         " vs " + std::to_string(RunStops) + " with only " +
         std::to_string(Traps) + " trap(s)");
  return R;
}
