//===- observe/Prof.cpp ----------------------------------------*- C++ -*-===//

#include "observe/Prof.h"

#include <atomic>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#include <cstring>
#endif

using namespace dmll;

CounterSample CounterSample::operator-(const CounterSample &Earlier) const {
  CounterSample D;
  D.Hw = Hw && Earlier.Hw;
  if (D.Hw) {
    D.Cycles = Cycles - Earlier.Cycles;
    D.Instructions = Instructions - Earlier.Instructions;
    D.LlcMisses = LlcMisses - Earlier.LlcMisses;
    D.BranchMisses = BranchMisses - Earlier.BranchMisses;
  }
  D.UserMs = UserMs - Earlier.UserMs;
  D.SysMs = SysMs - Earlier.SysMs;
  D.MinorFaults = MinorFaults - Earlier.MinorFaults;
  D.MajorFaults = MajorFaults - Earlier.MajorFaults;
  D.CtxSwitches = CtxSwitches - Earlier.CtxSwitches;
  return D;
}

void CounterSample::add(const CounterSample &O) {
  bool HadAny = Cycles || Instructions || UserMs || SysMs || MinorFaults ||
                CtxSwitches || Hw;
  // An all-zero accumulator adopts the other side's validity; otherwise a
  // single fallback-only interval poisons the hardware fields.
  Hw = HadAny ? (Hw && O.Hw) : O.Hw;
  Cycles += O.Cycles;
  Instructions += O.Instructions;
  LlcMisses += O.LlcMisses;
  BranchMisses += O.BranchMisses;
  UserMs += O.UserMs;
  SysMs += O.SysMs;
  MinorFaults += O.MinorFaults;
  MajorFaults += O.MajorFaults;
  CtxSwitches += O.CtxSwitches;
}

namespace {

#if defined(__linux__)

/// -1 unknown, 0 unavailable, 1 available. Decided by the first thread that
/// probes; later threads trust the verdict and skip doomed syscalls.
std::atomic<int> HwVerdict{-1};

long perfOpen(perf_event_attr &PE, int GroupFd) {
  PE.size = sizeof(PE);
  PE.exclude_kernel = 1;
  PE.exclude_hv = 1;
  // Counting starts immediately; samples are cumulative and bracketing is
  // done by subtraction, so there is no enable/disable per probe.
  return syscall(SYS_perf_event_open, &PE, /*pid=*/0, /*cpu=*/-1, GroupFd,
                 /*flags=*/0);
}

/// One thread's event group: a cycles leader plus three siblings, read as a
/// single PERF_FORMAT_GROUP blob per probe.
struct PerfGroup {
  int Leader = -1;
  int Fds[4] = {-1, -1, -1, -1};
  bool Open = false;

  PerfGroup() {
    if (HwVerdict.load(std::memory_order_relaxed) == 0)
      return;
    static const uint64_t Configs[4] = {
        PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
        PERF_COUNT_HW_CACHE_MISSES, PERF_COUNT_HW_BRANCH_MISSES};
    for (int I = 0; I < 4; ++I) {
      perf_event_attr PE;
      std::memset(&PE, 0, sizeof(PE));
      PE.type = PERF_TYPE_HARDWARE;
      PE.config = Configs[I];
      if (I == 0)
        PE.read_format = PERF_FORMAT_GROUP;
      long Fd = perfOpen(PE, I == 0 ? -1 : Leader);
      if (Fd < 0) {
        close();
        HwVerdict.store(0, std::memory_order_relaxed);
        return;
      }
      Fds[I] = static_cast<int>(Fd);
      if (I == 0)
        Leader = Fds[0];
    }
    Open = true;
    HwVerdict.store(1, std::memory_order_relaxed);
  }

  ~PerfGroup() { close(); }

  void close() {
    for (int &Fd : Fds) {
      if (Fd >= 0)
        ::close(Fd);
      Fd = -1;
    }
    Leader = -1;
    Open = false;
  }

  bool read(int64_t Out[4]) const {
    if (!Open)
      return false;
    // PERF_FORMAT_GROUP layout: u64 nr, then one u64 value per member.
    uint64_t Buf[1 + 4];
    ssize_t Got = ::read(Leader, Buf, sizeof(Buf));
    if (Got != static_cast<ssize_t>(sizeof(Buf)) || Buf[0] != 4)
      return false;
    for (int I = 0; I < 4; ++I)
      Out[I] = static_cast<int64_t>(Buf[1 + I]);
    return true;
  }
};

PerfGroup &threadGroup() {
  thread_local PerfGroup G;
  return G;
}

#endif // __linux__

} // namespace

CounterSample ThreadCounters::now() {
  CounterSample S;
#if defined(__linux__)
  int64_t Hw[4];
  if (threadGroup().read(Hw)) {
    S.Hw = true;
    S.Cycles = Hw[0];
    S.Instructions = Hw[1];
    S.LlcMisses = Hw[2];
    S.BranchMisses = Hw[3];
  }
  rusage RU;
  if (getrusage(RUSAGE_THREAD, &RU) == 0) {
    S.UserMs = RU.ru_utime.tv_sec * 1e3 + RU.ru_utime.tv_usec * 1e-3;
    S.SysMs = RU.ru_stime.tv_sec * 1e3 + RU.ru_stime.tv_usec * 1e-3;
    S.MinorFaults = RU.ru_minflt;
    S.MajorFaults = RU.ru_majflt;
    S.CtxSwitches = RU.ru_nvcsw + RU.ru_nivcsw;
  }
#endif
  return S;
}

bool ThreadCounters::hardwareAvailable() {
#if defined(__linux__)
  int V = HwVerdict.load(std::memory_order_relaxed);
  if (V >= 0)
    return V == 1;
  return threadGroup().Open;
#else
  return false;
#endif
}

std::string dmll::counterSourceName() {
  return ThreadCounters::hardwareAvailable()
             ? "perf_event(cycles,instructions,llc-misses,branch-misses)"
             : "fallback(getrusage)";
}
