//===- observe/MetricsRegistry.h - Process-wide metrics --------*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named instruments — monotonic counters,
/// last-write gauges, and fixed-bucket histograms — that the runtime feeds
/// as it executes: chunk-body latency and steal latency from the thread
/// pool, kernel-compile time from the engine, loop/launch/fallback tallies
/// from the interpreter. Instruments are created on first use, live for the
/// process, and are updated lock-free (atomics only), so probes are cheap
/// enough to leave in hot paths; creation/lookup takes a registry mutex and
/// callers on hot paths resolve their instrument once up front.
///
/// The registry snapshot is exported as the "metrics" section of the
/// execution profile JSON (runtime/ProfileJson.h), next to the Chrome trace
/// — trace answers "when", metrics answer "how much, in aggregate" — and in
/// Prometheus text exposition format by the live snapshotter
/// (observe/LiveTelemetry.h, docs/TELEMETRY.md).
/// Instrument naming follows the trace convention: dotted lowercase
/// `<area>.<what>`, with `_ms` suffix on time-valued histograms. A name may
/// additionally carry `|key=value` label suffixes (e.g.
/// `exec.loop_ms|loop=Multiloop[Reduce]|engine=kernel`); the JSON export
/// keeps them verbatim while the Prometheus renderer splits them into label
/// sets, grouping every labeled series under one metric family.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_OBSERVE_METRICSREGISTRY_H
#define DMLL_OBSERVE_METRICSREGISTRY_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dmll {

/// Monotonic event count.
class MetricCounter {
public:
  void inc(int64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// Last-written value (e.g. "threads in the current run").
class MetricGauge {
public:
  void set(double X) { V.store(X, std::memory_order_relaxed); }
  double value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<double> V{0};
};

/// Fixed-bucket histogram: bucket I counts observations <= Bounds[I], the
/// last implicit bucket counts the rest (+inf). Bounds are set at creation
/// and never change, so concurrent observers touch only atomics.
class MetricHistogram {
public:
  explicit MetricHistogram(std::vector<double> UpperBounds);

  void observe(double X);

  const std::vector<double> &bounds() const { return Bounds; }
  /// Count in bucket \p I (I == bounds().size() is the +inf bucket).
  int64_t bucketCount(size_t I) const;
  int64_t count() const { return N.load(std::memory_order_relaxed); }
  double sum() const { return Sum.load(std::memory_order_relaxed); }
  double mean() const;

private:
  std::vector<double> Bounds;
  std::unique_ptr<std::atomic<int64_t>[]> Counts; ///< Bounds.size() + 1
  std::atomic<int64_t> N{0};
  std::atomic<double> Sum{0};
};

/// Default bucket bounds for millisecond-valued latency histograms:
/// 0.005ms .. 5000ms in a 1-2.5-5 ladder.
const std::vector<double> &latencyBucketsMs();

/// Point-in-time copy of one histogram: per-bucket counts (last entry is
/// the +inf bucket), observation count, and sum.
struct HistogramSnapshot {
  std::vector<double> Bounds;
  std::vector<int64_t> Counts; ///< Bounds.size() + 1 entries
  int64_t Count = 0;
  double Sum = 0;
};

/// Quantile estimate from a histogram snapshot, Prometheus
/// histogram_quantile style: linear interpolation inside the first bucket
/// whose cumulative count reaches \p Q * total. \p Q in [0, 1]; returns 0
/// for an empty histogram. Observations in the +inf bucket clamp to the
/// last finite bound (there is nothing to interpolate against). This is
/// what `serve.request_ms` p50/p99 are computed from (docs/SERVICE.md).
double histogramQuantile(const HistogramSnapshot &H, double Q);

/// Point-in-time copy of every instrument, for exporters that iterate the
/// registry off the hot path (Prometheus rendering, snapshot deltas).
struct MetricsSnapshot {
  std::map<std::string, int64_t> Counters;
  std::map<std::string, double> Gauges;
  std::map<std::string, HistogramSnapshot> Histograms;
};

/// The registry. One process-wide instance (global()); tests may construct
/// private instances. Instrument references remain valid for the
/// registry's lifetime.
class MetricsRegistry {
public:
  static MetricsRegistry &global();

  MetricCounter &counter(const std::string &Name);
  MetricGauge &gauge(const std::string &Name);
  /// Returns the named histogram, creating it with \p UpperBounds (or the
  /// latency default) on first use. Later calls ignore the bounds argument.
  MetricHistogram &histogram(const std::string &Name,
                             const std::vector<double> &UpperBounds = {});

  /// Copies every instrument's current value (takes the registry mutex;
  /// concurrent observers proceed lock-free).
  MetricsSnapshot snapshot() const;

  /// The "metrics" JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{"count":..,"sum":..,"buckets":[{"le":..,"count":..}
  /// ...]}}}. Bucket rows are cumulative (Prometheus-style: each row counts
  /// observations <= its bound); the last row's "le" is "inf" and its count
  /// is the total observation count.
  std::string renderJson() const;

  /// Zeroes every instrument (drops them; names repopulate on next use).
  /// For test isolation — never called on the hot path.
  void reset();

private:
  mutable std::mutex Mu;
  std::map<std::string, std::unique_ptr<MetricCounter>> Counters;
  std::map<std::string, std::unique_ptr<MetricGauge>> Gauges;
  std::map<std::string, std::unique_ptr<MetricHistogram>> Histograms;
};

} // namespace dmll

#endif // DMLL_OBSERVE_METRICSREGISTRY_H
