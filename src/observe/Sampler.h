//===- observe/Sampler.h - Low-overhead sampling profiler ------*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A timer-driven sampling profiler that attributes wall time to the loop
/// signature and pipeline phase each thread is currently executing, without
/// unwinding native stacks: the interpreter, kernel VM, and executor
/// publish their position into a per-thread SampleSlot (two relaxed atomic
/// pointer stores per scope, into strings interned for the process
/// lifetime), and a background thread wakes every period, reads every live
/// slot, and bumps a (phase, loop) bucket. A slot with a null phase counts
/// as idle. Publication costs nanoseconds whether or not a profiler runs,
/// and the sampler thread does O(threads) loads per tick, so the measured
/// overhead on real suites is well under the 2% budget telemetry_smoke
/// gates (docs/TELEMETRY.md has the methodology).
///
/// Aggregated buckets export as collapsed stacks — `dmll;<phase>;<loop> N`
/// lines that flamegraph.pl and speedscope ingest directly — and as
/// dmll_samples_total series in the Prometheus exposition
/// (observe/LiveTelemetry.h). executeProgram brackets each run with
/// snapshots, so ExecutionReport carries the run's sample delta.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_OBSERVE_SAMPLER_H
#define DMLL_OBSERVE_SAMPLER_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace dmll {

/// Per-thread publication slot the sampler thread reads. Slots live in a
/// process-wide registry and are never deallocated; a thread that exits
/// releases its slot for reuse.
struct SampleSlot {
  std::atomic<const char *> Phase{nullptr}; ///< static phase literal
  std::atomic<const char *> Loop{nullptr};  ///< interned loop signature
  std::atomic<bool> InUse{false};
};

/// Interns \p S into the process-lifetime loop-name table and returns a
/// stable pointer (the sampler reads these from another thread, so the
/// storage must never move or free).
const char *internSampleName(const std::string &S);

/// RAII publication of (phase, loop) into the calling thread's slot.
/// \p Phase must be a string with static storage duration; \p Loop must be
/// null or an internSampleName pointer. Null \p Loop keeps the enclosing
/// scope's loop (chunk bodies nest inside their loop's scope on the driver
/// but start fresh on pool workers, where they publish the loop
/// themselves). Restores the previous values on destruction.
class SampleScope {
public:
  SampleScope(const char *Phase, const char *Loop);
  ~SampleScope();
  SampleScope(const SampleScope &) = delete;
  SampleScope &operator=(const SampleScope &) = delete;

private:
  SampleSlot *S;
  const char *PrevPhase = nullptr;
  const char *PrevLoop = nullptr;
};

/// Aggregated sampling results; Stacks pairs are ("<phase>;<loop>", count)
/// with ";<loop>" omitted when no loop was published, sorted by key.
struct SamplingSummary {
  bool Enabled = false;
  double PeriodMs = 0;
  int64_t Ticks = 0;       ///< sampler wakeups
  int64_t Samples = 0;     ///< busy samples (a thread inside a phase)
  int64_t IdleSamples = 0; ///< registered threads outside any phase
  std::vector<std::pair<std::string, int64_t>> Stacks;
};

/// Busy-stack delta \p After - \p Before (counts clamp at zero; Ticks /
/// Samples / IdleSamples subtract).
SamplingSummary samplingDelta(const SamplingSummary &Before,
                              const SamplingSummary &After);

/// The sampling profiler. Construct with a period, activate with
/// SamplerActivation (which starts the thread), read summaries at any time.
class SamplingProfiler {
public:
  explicit SamplingProfiler(double PeriodMs = 1.0);
  ~SamplingProfiler();

  void start();
  void stop();
  bool running() const { return Running.load(std::memory_order_acquire); }
  double periodMs() const { return Period; }

  /// Snapshot of the aggregate so far; safe while running.
  SamplingSummary summary() const;

  /// Collapsed-stack rendering of summary() — one "dmll;<phase>;<loop> N"
  /// line per bucket plus a "dmll;(idle) N" line, flamegraph.pl input.
  std::string collapsed() const;
  bool writeCollapsed(const std::string &Path) const;

  /// The process-wide active profiler, or null. Set by SamplerActivation.
  static SamplingProfiler *active();

private:
  friend class SamplerActivation;
  void threadMain();

  double Period;
  std::atomic<bool> Running{false};
  std::thread Thread;
  mutable std::mutex Mu; ///< guards Buckets/Ticks/Samples/Idle
  std::map<std::pair<const char *, const char *>, int64_t> Buckets;
  int64_t Ticks = 0;
  int64_t Samples = 0;
  int64_t Idle = 0;
};

/// RAII: installs \p P as the process-wide profiler and starts its sampling
/// thread; stops it and restores the previous profiler on destruction.
class SamplerActivation {
public:
  explicit SamplerActivation(SamplingProfiler &P);
  ~SamplerActivation();

private:
  SamplingProfiler *Prev;
  SamplingProfiler &Mine;
};

} // namespace dmll

#endif // DMLL_OBSERVE_SAMPLER_H
