//===- observe/MetricsRegistry.cpp -----------------------------*- C++ -*-===//

#include "observe/MetricsRegistry.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

using namespace dmll;

MetricHistogram::MetricHistogram(std::vector<double> UpperBounds)
    : Bounds(std::move(UpperBounds)),
      Counts(new std::atomic<int64_t>[Bounds.size() + 1]) {
  for (size_t I = 0; I <= Bounds.size(); ++I)
    Counts[I].store(0, std::memory_order_relaxed);
}

void MetricHistogram::observe(double X) {
  size_t I = std::lower_bound(Bounds.begin(), Bounds.end(), X) -
             Bounds.begin();
  Counts[I].fetch_add(1, std::memory_order_relaxed);
  N.fetch_add(1, std::memory_order_relaxed);
  // C++20 atomic<double>::fetch_add.
  Sum.fetch_add(X, std::memory_order_relaxed);
}

int64_t MetricHistogram::bucketCount(size_t I) const {
  return I <= Bounds.size() ? Counts[I].load(std::memory_order_relaxed) : 0;
}

double MetricHistogram::mean() const {
  int64_t C = count();
  return C > 0 ? sum() / static_cast<double>(C) : 0.0;
}

const std::vector<double> &dmll::latencyBucketsMs() {
  static const std::vector<double> B = {
      0.005, 0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0,
      2.5,   5.0,  10.0,  25.0, 50.0, 100,  250,  500,
      1000,  2500, 5000};
  return B;
}

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry R;
  return R;
}

MetricCounter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> L(Mu);
  auto &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<MetricCounter>();
  return *Slot;
}

MetricGauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> L(Mu);
  auto &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<MetricGauge>();
  return *Slot;
}

MetricHistogram &
MetricsRegistry::histogram(const std::string &Name,
                           const std::vector<double> &UpperBounds) {
  std::lock_guard<std::mutex> L(Mu);
  auto &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<MetricHistogram>(
        UpperBounds.empty() ? latencyBucketsMs() : UpperBounds);
  return *Slot;
}

namespace {

void jsonNum(std::ostringstream &OS, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%g", V);
  OS << Buf;
}

} // namespace

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> L(Mu);
  MetricsSnapshot S;
  for (const auto &[Name, C] : Counters)
    S.Counters[Name] = C->value();
  for (const auto &[Name, G] : Gauges)
    S.Gauges[Name] = G->value();
  for (const auto &[Name, H] : Histograms) {
    HistogramSnapshot &HS = S.Histograms[Name];
    HS.Bounds = H->bounds();
    HS.Counts.resize(HS.Bounds.size() + 1);
    for (size_t I = 0; I <= HS.Bounds.size(); ++I)
      HS.Counts[I] = H->bucketCount(I);
    HS.Count = H->count();
    HS.Sum = H->sum();
  }
  return S;
}

std::string MetricsRegistry::renderJson() const {
  std::lock_guard<std::mutex> L(Mu);
  std::ostringstream OS;
  OS << "{\"counters\":{";
  bool First = true;
  for (const auto &[Name, C] : Counters) {
    OS << (First ? "" : ",") << "\"" << Name << "\":" << C->value();
    First = false;
  }
  OS << "},\"gauges\":{";
  First = true;
  for (const auto &[Name, G] : Gauges) {
    OS << (First ? "" : ",") << "\"" << Name << "\":";
    jsonNum(OS, G->value());
    First = false;
  }
  OS << "},\"histograms\":{";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    OS << (First ? "" : ",") << "\"" << Name << "\":{\"count\":" << H->count()
       << ",\"sum\":";
    jsonNum(OS, H->sum());
    OS << ",\"buckets\":[";
    // Cumulative rows, Prometheus-style: each row counts observations <=
    // its bound, and the final "inf" row is the total — what exposition
    // consumers (and dmll-prof) expect from a histogram.
    const std::vector<double> &B = H->bounds();
    int64_t Cum = 0;
    for (size_t I = 0; I <= B.size(); ++I) {
      Cum += H->bucketCount(I);
      OS << (I ? "," : "") << "{\"le\":";
      if (I < B.size())
        jsonNum(OS, B[I]);
      else
        OS << "\"inf\"";
      OS << ",\"count\":" << Cum << "}";
    }
    OS << "]}";
    First = false;
  }
  OS << "}}";
  return OS.str();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> L(Mu);
  Counters.clear();
  Gauges.clear();
  Histograms.clear();
}

double dmll::histogramQuantile(const HistogramSnapshot &H, double Q) {
  if (H.Counts.empty())
    return 0;
  int64_t Total = 0;
  for (int64_t C : H.Counts)
    Total += C;
  if (Total <= 0)
    return 0;
  double Rank = Q * static_cast<double>(Total);
  double PrevBound = 0;
  int64_t Cum = 0;
  for (size_t I = 0; I < H.Counts.size(); ++I) {
    int64_t Prev = Cum;
    Cum += H.Counts[I];
    if (static_cast<double>(Cum) < Rank) {
      if (I < H.Bounds.size())
        PrevBound = H.Bounds[I];
      continue;
    }
    if (I >= H.Bounds.size())
      return PrevBound; // +inf bucket: clamp to the last finite bound
    double Bound = H.Bounds[I];
    int64_t InBucket = Cum - Prev;
    if (InBucket <= 0)
      return Bound;
    double Frac = (Rank - static_cast<double>(Prev)) /
                  static_cast<double>(InBucket);
    return PrevBound + (Bound - PrevBound) * Frac;
  }
  return PrevBound;
}
