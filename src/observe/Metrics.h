//===- observe/Metrics.h - Executor metrics aggregation --------*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-worker metrics for the chunked shared-memory executor: how many
/// chunks each worker executed, how many index-space items those chunks
/// covered, how many chunks were stolen from other workers' deques, and
/// time spent inside chunk bodies (busy) versus waking up / probing for
/// work (queue-wait).
/// ThreadPool::parallelFor fills a ParallelForStats per call; the
/// interpreter accumulates them across all parallel multiloops into an
/// ExecProfile, which executeProgram surfaces on the ExecutionReport.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_OBSERVE_METRICS_H
#define DMLL_OBSERVE_METRICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace dmll {

/// One worker's share of one (or, after accumulation, many) parallel-for
/// executions.
struct WorkerStats {
  unsigned Worker = 0; ///< worker index, 0-based
  int64_t Chunks = 0;  ///< chunks executed (own deque plus stolen)
  int64_t Items = 0;   ///< iteration-space indices covered by those chunks
  int64_t Steals = 0;  ///< chunks taken from another worker's deque
  double BusyMs = 0;   ///< wall time inside chunk bodies
  double WaitMs = 0;   ///< wake-up / steal-probe time outside bodies
};

/// Metrics of a single ThreadPool::parallelFor call.
struct ParallelForStats {
  double ElapsedMs = 0; ///< wall time of the whole call
  std::vector<WorkerStats> Workers;

  int64_t totalChunks() const;
  int64_t totalItems() const;
};

/// Accumulated executor metrics across an evaluation (one entry per worker,
/// merged by worker index across all parallel loops).
struct ExecProfile {
  std::vector<WorkerStats> Workers;
  int64_t ParallelLoops = 0;   ///< multiloops that took the chunked path
  int64_t SequentialLoops = 0; ///< multiloops evaluated on one thread

  /// Merges one parallel-for's stats into the per-worker totals.
  void accumulate(const ParallelForStats &S);
};

/// Fixed-width text table of per-worker stats (for benches/examples).
std::string renderWorkerStats(const std::vector<WorkerStats> &Workers);

} // namespace dmll

#endif // DMLL_OBSERVE_METRICS_H
