//===- observe/Metrics.h - Executor metrics aggregation --------*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-worker metrics for the chunked shared-memory executor: how many
/// chunks each worker executed, how many index-space items those chunks
/// covered, how many chunks were stolen from other workers' deques, time
/// spent inside chunk bodies (busy) versus waking up / probing for work
/// (queue-wait), and the hardware/rusage counter deltas of those chunk
/// bodies (observe/Prof.h).
/// ThreadPool::parallelFor fills a ParallelForStats per call; the
/// interpreter accumulates them across all parallel multiloops into an
/// ExecProfile — per-worker totals plus one LoopProfile per executed
/// closed loop — which executeProgram surfaces on the ExecutionReport.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_OBSERVE_METRICS_H
#define DMLL_OBSERVE_METRICS_H

#include "observe/Prof.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dmll {

/// One worker's share of one (or, after accumulation, many) parallel-for
/// executions.
struct WorkerStats {
  unsigned Worker = 0; ///< worker index, 0-based
  int64_t Chunks = 0;  ///< chunks executed (own deque plus stolen)
  int64_t Items = 0;   ///< iteration-space indices covered by those chunks
  int64_t Steals = 0;  ///< chunks taken from another worker's deque
  int64_t Skipped = 0; ///< chunks dropped after a trap / cancellation
  double BusyMs = 0;   ///< wall time inside chunk bodies
  double WaitMs = 0;   ///< wake-up / steal-probe time outside bodies
  /// Counter deltas summed over this worker's chunk bodies (hardware when
  /// available, getrusage fallback otherwise).
  CounterSample Counters;
};

/// Metrics of a single ThreadPool::parallelFor call.
struct ParallelForStats {
  double ElapsedMs = 0; ///< wall time of the whole call
  std::vector<WorkerStats> Workers;

  int64_t totalChunks() const;
  int64_t totalItems() const;
  /// Chunk-body counter deltas summed across workers.
  CounterSample totalCounters() const;
};

/// Measured execution record of one closed multiloop: which engine ran it,
/// how long it took, and what the counters saw. The calibration layer
/// (sim/Calibration.h) pairs these with the simulator's predictions.
struct LoopProfile {
  std::string Loop;   ///< loopSignature of the multiloop
  std::string Engine; ///< "interp" | "kernel"
  int64_t Iters = 0;
  double Millis = 0;    ///< wall time of the loop (execution + merge)
  bool Parallel = false;///< took the chunked path
  /// Effective knobs the loop ran with, after any per-loop tuning decision
  /// (tune/Decision.h) was applied: workers available to the loop, minimum
  /// parallel chunk size, and whether wide kernel blocks were enabled.
  unsigned Threads = 1;
  int64_t MinChunk = 0;
  bool Wide = false;
  /// True when a DecisionTable entry matched this loop's signature.
  bool Tuned = false;
  /// Counter deltas over the loop: chunk-body sums across workers for
  /// parallel loops plus the driver thread's own share (dispatch, merge);
  /// pure driver-thread deltas for sequential loops.
  CounterSample Counters;
};

/// Accumulated executor metrics across an evaluation (one entry per worker,
/// merged by worker index across all parallel loops).
struct ExecProfile {
  std::vector<WorkerStats> Workers;
  int64_t ParallelLoops = 0;   ///< multiloops that took the chunked path
  int64_t SequentialLoops = 0; ///< multiloops evaluated on one thread
  int64_t WideBlocks = 0;      ///< kernel index blocks run instruction-wide
  /// One record per executed closed multiloop, in execution order.
  std::vector<LoopProfile> Loops;

  /// Merges one parallel-for's stats into the per-worker totals.
  void accumulate(const ParallelForStats &S);
  /// Chunk-body counter deltas summed across the per-worker totals.
  CounterSample totalCounters() const;
};

/// Fixed-width text table of per-worker stats (for benches/examples).
std::string renderWorkerStats(const std::vector<WorkerStats> &Workers);

} // namespace dmll

#endif // DMLL_OBSERVE_METRICS_H
