//===- systems/Features.cpp ------------------------------------*- C++ -*-===//

#include "systems/Features.h"

#include "support/Table.h"

using namespace dmll;

int SystemFeatures::featureCount() const {
  return RichDataParallelism + NestedProgramming + NestedParallelism +
         MultipleCollections + RandomReads + MultiCore + Numa + Clusters +
         Gpus;
}

const std::vector<SystemFeatures> &dmll::featureTable() {
  static const std::vector<SystemFeatures> Rows = [] {
    auto Mk = [](const char *Name, bool Rich, bool NestProg, bool NestPar,
                 bool Multi, bool Rand, bool MC, bool NU, bool CL, bool GP) {
      SystemFeatures S;
      S.Name = Name;
      S.RichDataParallelism = Rich;
      S.NestedProgramming = NestProg;
      S.NestedParallelism = NestPar;
      S.MultipleCollections = Multi;
      S.RandomReads = Rand;
      S.MultiCore = MC;
      S.Numa = NU;
      S.Clusters = CL;
      S.Gpus = GP;
      return S;
    };
    std::vector<SystemFeatures> R;
    R.push_back(Mk("MapReduce", 0, 0, 0, 0, 0, 0, 0, 1, 0));
    R.push_back(Mk("DryadLINQ", 1, 0, 0, 1, 0, 0, 0, 1, 0));
    R.push_back(Mk("Thrust", 1, 0, 0, 0, 0, 0, 0, 0, 1));
    R.push_back(Mk("Scala Collections", 1, 1, 1, 1, 1, 1, 0, 0, 0));
    R.push_back(Mk("Delite", 1, 1, 1, 1, 1, 1, 0, 0, 1));
    R.push_back(Mk("Spark", 0, 0, 0, 0, 0, 1, 0, 1, 0));
    R.push_back(Mk("Lime", 1, 1, 0, 1, 0, 1, 0, 0, 1));
    R.push_back(Mk("PowerGraph", 0, 0, 0, 0, 1, 1, 0, 1, 0));
    R.push_back(Mk("Dandelion", 1, 1, 0, 1, 0, 1, 0, 1, 1));
    R.push_back(Mk("DMLL", 1, 1, 1, 1, 1, 1, 1, 1, 1));
    return R;
  }();
  return Rows;
}

const SystemFeatures &dmll::dmllFeatures() { return featureTable().back(); }

std::string dmll::renderFeatureTable() {
  Table T({"System", "RichDP", "NestProg", "NestPar", "MultiColl",
           "RandRead", "MultiCore", "NUMA", "Cluster", "GPU"});
  auto Dot = [](bool B) { return std::string(B ? "x" : ""); };
  for (const SystemFeatures &S : featureTable())
    T.addRow({S.Name, Dot(S.RichDataParallelism), Dot(S.NestedProgramming),
              Dot(S.NestedParallelism), Dot(S.MultipleCollections),
              Dot(S.RandomReads), Dot(S.MultiCore), Dot(S.Numa),
              Dot(S.Clusters), Dot(S.Gpus)});
  return T.render();
}
