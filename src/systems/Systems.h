//===- systems/Systems.h - Benchmark bundles and plan costing --*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Packages each benchmark as a BenchApp: the DMLL program plus the dataset
/// metadata (SizeEnv) the symbolic cost analysis is evaluated against, at
/// paper scale by default (500k x 100 matrices, TPC-H SF5-sized lineitems,
/// LiveJournal-sized graph). planCosts() compiles a plan under given
/// options and derives its LoopCosts — the optimized DMLL plan, the
/// fusion-only Delite-style plan, or the unfused per-pattern plan the
/// Spark discipline executes.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_SYSTEMS_SYSTEMS_H
#define DMLL_SYSTEMS_SYSTEMS_H

#include "analysis/Cost.h"
#include "transform/Pipeline.h"

#include <string>
#include <vector>

namespace dmll {

/// One benchmark instance at a given data scale.
struct BenchApp {
  std::string Name;
  Program P;
  SizeEnv Env;
  /// Primary dataset footprint in bytes (PCIe / network transfers).
  double DatasetBytes = 0;
  /// Iterations the paper amortizes one-time transfers over (iterative
  /// algorithms run many steps; Q1/Gene scan once).
  int AmortizeIters = 1;
};

/// Factories. Scales default to the paper's datasets; tests pass smaller
/// ones. K-means/logreg/GDA: Rows x Cols matrix; k clusters.
BenchApp benchKMeans(double Rows = 500e3, double Cols = 100, double K = 20);
BenchApp benchLogReg(double Rows = 500e3, double Cols = 100);
BenchApp benchGda(double Rows = 500e3, double Cols = 100);
BenchApp benchTpchQ1(double Items = 30e6); ///< ~SF5
BenchApp benchGene(double Reads = 3.5e6, double Barcodes = 1e4);
BenchApp benchPageRank(double Vertices = 4.8e6, double Edges = 69e6);
BenchApp benchTriangle(double Vertices = 4.8e6, double Edges = 69e6);

/// Compiles \p App.P with \p Opts and evaluates the cost analysis against
/// \p App.Env. The returned plan is what the simulator executes.
std::vector<LoopCost> planCosts(const BenchApp &App,
                                const CompileOptions &Opts);

/// Compile options for the three plan variants used across the figures.
CompileOptions dmllPlanOptions(Target T);
CompileOptions fusionOnlyPlanOptions(Target T);   ///< Delite / Fig. 6 base
/// The manually optimized Spark port (Section 6): same parallelization and
/// distribution strategy, hand-enforced — i.e. the full plan minus
/// AoS-to-SoA, which "is not possible in Spark because each field of the
/// output record is produced from multiple fields of the input record".
CompileOptions sparkPlanOptions(Target T);
CompileOptions unfusedPlanOptions(Target T);      ///< naive per-pattern plan

} // namespace dmll

#endif // DMLL_SYSTEMS_SYSTEMS_H
