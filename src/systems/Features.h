//===- systems/Features.h - Table 1 capability matrix ----------*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The programming-model-feature and hardware-target comparison of Table 1,
/// as a queryable registry. DMLL's row is additionally *checked by tests*
/// against what this repository actually implements (e.g. "random reads"
/// holds because ArrayRead accepts arbitrary indices and the runtime traps
/// remote ones).
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_SYSTEMS_FEATURES_H
#define DMLL_SYSTEMS_FEATURES_H

#include <string>
#include <vector>

namespace dmll {

/// One row of Table 1.
struct SystemFeatures {
  std::string Name;
  // Programming model features.
  bool RichDataParallelism = false;
  bool NestedProgramming = false;
  bool NestedParallelism = false;
  bool MultipleCollections = false;
  bool RandomReads = false;
  // Supported hardware.
  bool MultiCore = false;
  bool Numa = false;
  bool Clusters = false;
  bool Gpus = false;

  int featureCount() const;
};

/// All rows, in the paper's (chronological) order; DMLL last.
const std::vector<SystemFeatures> &featureTable();

/// The DMLL row.
const SystemFeatures &dmllFeatures();

/// Renders the matrix like Table 1.
std::string renderFeatureTable();

} // namespace dmll

#endif // DMLL_SYSTEMS_FEATURES_H
