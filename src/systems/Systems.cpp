//===- systems/Systems.cpp -------------------------------------*- C++ -*-===//

#include "systems/Systems.h"

#include "apps/Apps.h"

using namespace dmll;

namespace {

SizeEnv matrixEnv(const char *Name, double Rows, double Cols) {
  SizeEnv E;
  E.Scalars[std::string(Name) + ".rows"] = Rows;
  E.Scalars[std::string(Name) + ".cols"] = Cols;
  E.ArrayLens[std::string(Name) + ".data"] = Rows * Cols;
  return E;
}

} // namespace

BenchApp dmll::benchKMeans(double Rows, double Cols, double K) {
  BenchApp A;
  A.Name = "k-means";
  A.P = apps::kmeansSharedMemory();
  A.Env = matrixEnv("matrix", Rows, Cols);
  SizeEnv C = matrixEnv("clusters", K, Cols);
  A.Env.Scalars.insert(C.Scalars.begin(), C.Scalars.end());
  A.Env.ArrayLens.insert(C.ArrayLens.begin(), C.ArrayLens.end());
  A.DatasetBytes = Rows * Cols * 8;
  A.AmortizeIters = 20;
  return A;
}

BenchApp dmll::benchLogReg(double Rows, double Cols) {
  BenchApp A;
  A.Name = "logreg";
  A.P = apps::logreg();
  A.Env = matrixEnv("x", Rows, Cols);
  A.Env.ArrayLens["y"] = Rows;
  A.Env.ArrayLens["theta"] = Cols;
  A.Env.Scalars["alpha"] = 0.1;
  A.DatasetBytes = Rows * (Cols + 1) * 8;
  A.AmortizeIters = 30;
  return A;
}

BenchApp dmll::benchGda(double Rows, double Cols) {
  BenchApp A;
  A.Name = "gda";
  A.P = apps::gda();
  A.Env = matrixEnv("x", Rows, Cols);
  A.Env.ArrayLens["y"] = Rows;
  A.DatasetBytes = Rows * (Cols + 1) * 8;
  A.AmortizeIters = 2; // GDA iterates over its dataset twice
  return A;
}

BenchApp dmll::benchTpchQ1(double Items) {
  BenchApp A;
  A.Name = "tpch-q1";
  A.P = apps::tpchQ1();
  // Per-field columns after SoA; the AoS path reads the same totals.
  for (const char *F : {"quantity", "extendedprice", "discount", "tax"})
    A.Env.ArrayLens[std::string("lineitems.") + F] = Items;
  for (const char *F : {"returnflag", "linestatus", "shipdate", "orderkey",
                        "partkey"})
    A.Env.ArrayLens[std::string("lineitems.") + F] = Items;
  A.Env.ArrayLens["lineitems"] = Items;
  A.Env.Scalars["cutoff"] = 9500;
  A.Env.HashKeys = 6; // 3 return flags x 2 line statuses
  A.DatasetBytes = Items * (4 * 8 + 3 * 8); // the seven live fields
  A.AmortizeIters = 1;
  return A;
}

BenchApp dmll::benchGene(double Reads, double Barcodes) {
  BenchApp A;
  A.Name = "gene";
  A.P = apps::geneBarcoding();
  for (const char *F : {"barcode", "quality", "length", "flowcell"})
    A.Env.ArrayLens[std::string("genes.") + F] = Reads;
  A.Env.ArrayLens["genes"] = Reads;
  A.Env.Scalars["min_quality"] = 10.0;
  A.Env.HashKeys = Barcodes;
  A.DatasetBytes = Reads * 3 * 8;
  A.AmortizeIters = 1;
  return A;
}

BenchApp dmll::benchPageRank(double Vertices, double Edges) {
  BenchApp A;
  A.Name = "pagerank";
  A.P = apps::pageRankPull();
  A.Env.ArrayLens["in_offsets"] = Vertices + 1;
  A.Env.ArrayLens["in_edges"] = Edges;
  A.Env.ArrayLens["outdeg"] = Vertices;
  A.Env.ArrayLens["ranks"] = Vertices;
  A.Env.Scalars["numv"] = Vertices;
  A.DatasetBytes = (Edges + 3 * Vertices) * 8;
  A.AmortizeIters = 10;
  return A;
}

BenchApp dmll::benchTriangle(double Vertices, double Edges) {
  BenchApp A;
  A.Name = "triangle";
  A.P = apps::triangleCount();
  A.Env.ArrayLens["offsets"] = Vertices + 1;
  A.Env.ArrayLens["edges"] = Edges;
  A.Env.ArrayLens["edge_src"] = Edges;
  A.Env.ArrayLens["edge_dst"] = Edges;
  A.DatasetBytes = Edges * 3 * 8;
  A.AmortizeIters = 1;
  return A;
}

std::vector<LoopCost> dmll::planCosts(const BenchApp &App,
                                      const CompileOptions &Opts) {
  CompileResult CR = compileProgram(App.P, Opts);
  return analyzeCosts(CR.P, CR.Partitioning, App.Env);
}

CompileOptions dmll::dmllPlanOptions(Target T) {
  CompileOptions O;
  O.T = T;
  return O;
}

CompileOptions dmll::fusionOnlyPlanOptions(Target T) {
  CompileOptions O;
  O.T = T;
  O.EnableNestedRules = false;
  return O;
}

CompileOptions dmll::sparkPlanOptions(Target T) {
  CompileOptions O;
  O.T = T;
  O.EnableSoa = false;
  return O;
}

CompileOptions dmll::unfusedPlanOptions(Target T) {
  CompileOptions O;
  O.T = T;
  O.EnableFusion = false;
  O.EnableHorizontal = false;
  O.EnableNestedRules = false;
  O.EnableSoa = false;
  return O;
}
