//===- frontend/Frontend.cpp -----------------------------------*- C++ -*-===//

#include "frontend/Frontend.h"

#include "ir/Traversal.h"
#include "observe/Trace.h"
#include "support/Error.h"

using namespace dmll;
using namespace dmll::frontend;

namespace dmll {
namespace frontend {

Val operator+(Val A, Val B) { return binop(BinOpKind::Add, A.expr(), B.expr()); }
Val operator-(Val A, Val B) { return binop(BinOpKind::Sub, A.expr(), B.expr()); }
Val operator*(Val A, Val B) { return binop(BinOpKind::Mul, A.expr(), B.expr()); }
Val operator/(Val A, Val B) { return binop(BinOpKind::Div, A.expr(), B.expr()); }
Val operator%(Val A, Val B) { return binop(BinOpKind::Mod, A.expr(), B.expr()); }
Val operator==(Val A, Val B) { return binop(BinOpKind::Eq, A.expr(), B.expr()); }
Val operator!=(Val A, Val B) { return binop(BinOpKind::Ne, A.expr(), B.expr()); }
Val operator<(Val A, Val B) { return binop(BinOpKind::Lt, A.expr(), B.expr()); }
Val operator<=(Val A, Val B) { return binop(BinOpKind::Le, A.expr(), B.expr()); }
Val operator>(Val A, Val B) { return binop(BinOpKind::Gt, A.expr(), B.expr()); }
Val operator>=(Val A, Val B) { return binop(BinOpKind::Ge, A.expr(), B.expr()); }
Val operator&&(Val A, Val B) { return binop(BinOpKind::And, A.expr(), B.expr()); }
Val operator||(Val A, Val B) { return binop(BinOpKind::Or, A.expr(), B.expr()); }
Val operator-(Val A) { return unop(UnOpKind::Neg, A.expr()); }

Val vmin(Val A, Val B) { return binop(BinOpKind::Min, A.expr(), B.expr()); }
Val vmax(Val A, Val B) { return binop(BinOpKind::Max, A.expr(), B.expr()); }
Val vselect(Val C, Val A, Val B) {
  return select(C.expr(), A.expr(), B.expr());
}
Val vexp(Val A) { return unop(UnOpKind::Exp, A.expr()); }
Val vlog(Val A) { return unop(UnOpKind::Log, A.expr()); }
Val vsqrt(Val A) { return unop(UnOpKind::Sqrt, A.expr()); }
Val vabs(Val A) { return unop(UnOpKind::Abs, A.expr()); }
Val toF64(Val A) { return castTo(Type::f64(), A.expr()); }
Val toI64(Val A) { return castTo(Type::i64(), A.expr()); }

Val tabulate(Val N, const Fn1 &F) {
  Generator G;
  G.Kind = GenKind::Collect;
  G.Cond = trueCond();
  G.Value = indexFunc("i", [&](const ExprRef &I) { return F(Val(I)).expr(); });
  return singleLoop(N.expr(), std::move(G));
}

Val map(Val Arr, const Fn1 &F) {
  Val ArrV = Arr;
  return tabulate(Arr.len(), [&](Val I) { return F(ArrV(I)); });
}

Val zipWith(Val A, Val B, const Fn2 &F) {
  Val AV = A, BV = B;
  return tabulate(A.len(), [&](Val I) { return F(AV(I), BV(I)); });
}

Val filter(Val Arr, const Fn1 &Pred) {
  Generator G;
  G.Kind = GenKind::Collect;
  Val ArrV = Arr;
  G.Cond = indexFunc(
      "i", [&](const ExprRef &I) { return Pred(ArrV(Val(I))).expr(); });
  G.Value =
      indexFunc("i", [&](const ExprRef &I) { return ArrV(Val(I)).expr(); });
  return singleLoop(Arr.len().expr(), std::move(G));
}

Val flatMap(Val Arr, const Fn1 &F) { return flatten(map(Arr, F).expr()); }

Val reduceRange(Val N, const Fn1 &F, const Fn2 &R) {
  Generator G;
  G.Kind = GenKind::Reduce;
  G.Cond = trueCond();
  G.Value = indexFunc("i", [&](const ExprRef &I) { return F(Val(I)).expr(); });
  TypeRef VTy = G.Value.Body->type();
  G.Reduce = binFunc("r", VTy, [&](const ExprRef &A, const ExprRef &B) {
    return R(Val(A), Val(B)).expr();
  });
  return singleLoop(N.expr(), std::move(G));
}

Val reduce(Val Arr, const Fn2 &F) {
  Val ArrV = Arr;
  return reduceRange(Arr.len(), [&](Val I) { return ArrV(I); }, F);
}

/// Scalar or vector addition depending on the operand type; nested arrays
/// add recursively (sums of matrices for GDA's covariance).
static Val addAny(Val A, Val B) {
  if (A.type()->isArray())
    return zipWith(A, B, [](Val X, Val Y) { return addAny(X, Y); });
  return A + B;
}

Val sum(Val Arr) {
  return reduce(Arr, [](Val A, Val B) { return addAny(A, B); });
}

Val sumRange(Val N, const Fn1 &F) {
  return reduceRange(N, F, [](Val A, Val B) { return addAny(A, B); });
}

Val minIndexBy(Val N, const Fn1 &F) {
  // Reduce over {v, i} pairs, keeping the earlier index on ties (the reduce
  // is left-associated by the sequential semantics and kept ordered by the
  // parallel runtimes).
  std::vector<Type::Field> PairFields = {{"v", Type::f64()},
                                         {"i", Type::i64()}};
  Generator G;
  G.Kind = GenKind::Reduce;
  G.Cond = trueCond();
  G.Value = indexFunc("i", [&](const ExprRef &I) {
    Val V = toF64(F(Val(I)));
    return makeStruct(PairFields, {V.expr(), I});
  });
  TypeRef PairTy = G.Value.Body->type();
  G.Reduce = binFunc("m", PairTy, [&](const ExprRef &A, const ExprRef &B) {
    Val AV(A), BV(B);
    return vselect(AV.field("v") <= BV.field("v"), AV, BV).expr();
  });
  Val Pair = singleLoop(N.expr(), std::move(G));
  return Pair.field("i");
}

Val minIndex(Val Arr) {
  Val ArrV = Arr;
  return minIndexBy(Arr.len(), [&](Val I) { return ArrV(I); });
}

Val groupBy(Val Arr, const Fn1 &KeyF) {
  Generator G;
  G.Kind = GenKind::BucketCollect;
  Val ArrV = Arr;
  G.Cond = trueCond();
  G.Key = indexFunc(
      "i", [&](const ExprRef &I) { return toI64(KeyF(ArrV(Val(I)))).expr(); });
  G.Value =
      indexFunc("i", [&](const ExprRef &I) { return ArrV(Val(I)).expr(); });
  return singleLoop(Arr.len().expr(), std::move(G));
}

Val bucketReduceDense(Val N, const Fn1 &KeyF, const Fn1 &F, const Fn2 &R,
                      Val NumKeys) {
  Generator G;
  G.Kind = GenKind::BucketReduce;
  G.Cond = trueCond();
  G.Key = indexFunc(
      "i", [&](const ExprRef &I) { return toI64(KeyF(Val(I))).expr(); });
  G.Value = indexFunc("i", [&](const ExprRef &I) { return F(Val(I)).expr(); });
  TypeRef VTy = G.Value.Body->type();
  G.Reduce = binFunc("r", VTy, [&](const ExprRef &A, const ExprRef &B) {
    return R(Val(A), Val(B)).expr();
  });
  G.NumKeys = NumKeys.expr();
  return singleLoop(N.expr(), std::move(G));
}

Val bucketReduceHash(Val N, const Fn1 &KeyF, const Fn1 &F, const Fn2 &R) {
  Generator G;
  G.Kind = GenKind::BucketReduce;
  G.Cond = trueCond();
  G.Key = indexFunc(
      "i", [&](const ExprRef &I) { return toI64(KeyF(Val(I))).expr(); });
  G.Value = indexFunc("i", [&](const ExprRef &I) { return F(Val(I)).expr(); });
  TypeRef VTy = G.Value.Body->type();
  G.Reduce = binFunc("r", VTy, [&](const ExprRef &A, const ExprRef &B) {
    return R(Val(A), Val(B)).expr();
  });
  return singleLoop(N.expr(), std::move(G));
}

TypeRef Mat::type() {
  return Type::structOf({{"data", Type::arrayOf(Type::f64())},
                         {"rows", Type::i64()},
                         {"cols", Type::i64()}});
}

Val Mat::row(Val I) const {
  const Mat &M = *this;
  Val IV = I;
  return tabulate(cols(), [&](Val J) { return M.at(IV, J); });
}

Val Mat::mapRowsIdx(const Fn1 &F) const { return tabulate(rows(), F); }

Val Mat::sumRowsVec() const {
  const Mat &M = *this;
  return sumRange(rows(), [&](Val I) { return M.row(I); });
}

Val makeMat(Val Data, Val Rows, Val Cols) {
  return makeStruct({{"data", Type::arrayOf(Type::f64())},
                     {"rows", Type::i64()},
                     {"cols", Type::i64()}},
                    {Data.expr(), Rows.expr(), Cols.expr()});
}

Val distSq(Val A, Val B) {
  Val AV = A, BV = B;
  return sumRange(A.len(), [&](Val J) {
    Val D = AV(J) - BV(J);
    return D * D;
  });
}

Val dot(Val A, Val B) {
  Val AV = A, BV = B;
  return sumRange(A.len(), [&](Val J) { return AV(J) * BV(J); });
}

Val sigmoid(Val Z) { return Val(1.0) / (Val(1.0) + vexp(-Z)); }

Val ProgramBuilder::in(const std::string &Name, TypeRef Ty, LayoutHint Hint) {
  // A user-program error, not a compiler invariant: report it through the
  // recoverable trap path so a host process (daemon, fuzz harness) survives
  // a bad program. The message text is load-bearing — fuzz trap-class
  // matching compares it across executors (tests/FrontendTest.cpp pins it).
  for (const auto &I : Inputs)
    if (I->name() == Name)
      trap("duplicate input '" + Name + "'");
  auto In = input(Name, std::move(Ty), Hint);
  Inputs.push_back(In);
  return Val(ExprRef(In));
}

Mat ProgramBuilder::inMat(const std::string &Name, LayoutHint Hint) {
  return Mat(in(Name, Mat::type(), Hint));
}

Val ProgramBuilder::inVecF64(const std::string &Name, LayoutHint Hint) {
  return in(Name, Type::arrayOf(Type::f64()), Hint);
}

Val ProgramBuilder::inVecI64(const std::string &Name, LayoutHint Hint) {
  return in(Name, Type::arrayOf(Type::i64()), Hint);
}

Val ProgramBuilder::inI64(const std::string &Name) {
  return in(Name, Type::i64(), LayoutHint::Local);
}

Val ProgramBuilder::inF64(const std::string &Name) {
  return in(Name, Type::f64(), LayoutHint::Local);
}

Program ProgramBuilder::build(Val Result) {
  Program P;
  P.Inputs = Inputs;
  P.Result = Result.expr();
  if (TraceSession *Trace = TraceSession::active())
    Trace->instant(
        "frontend.program", "phase",
        {{"inputs", std::to_string(P.Inputs.size())},
         {"nodes", std::to_string(countNodes(P.Result))},
         {"loops", std::to_string(collectMultiloops(P.Result).size())}});
  return P;
}

} // namespace frontend
} // namespace dmll
