//===- frontend/Frontend.h - Implicitly parallel patterns API --*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-facing programming model: implicitly parallel patterns (map,
/// zipWith, filter, flatMap, reduce, groupBy, ...) that build multiloop IR,
/// mirroring the pseudocode of the paper (Fig. 1). Applications written
/// against this API are *not* distribution-aware; Sections 3-4's analyses
/// and transformations do that automatically.
///
/// `Val` wraps an expression; `Mat` wraps the {data, rows, cols} struct
/// encoding of dense row-major matrices and provides mapRows / sumRows /
/// minIndex-style helpers used by the ML benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_FRONTEND_FRONTEND_H
#define DMLL_FRONTEND_FRONTEND_H

#include "ir/Builder.h"
#include "ir/Expr.h"

#include <functional>

namespace dmll {
namespace frontend {

/// A staged value: a typed IR expression with operator sugar.
class Val {
public:
  Val() = default;
  /*implicit*/ Val(ExprRef E) : E(std::move(E)) {}
  /*implicit*/ Val(SymRef S) : E(std::move(S)) {}
  /*implicit*/ Val(int I) : E(constI64(I)) {}
  /*implicit*/ Val(int64_t I) : E(constI64(I)) {}
  /*implicit*/ Val(double D) : E(constF64(D)) {}

  bool isSet() const { return E != nullptr; }
  const ExprRef &expr() const { return E; }
  const TypeRef &type() const { return E->type(); }

  /// Random-access read `arr(i)`.
  Val operator()(Val Idx) const { return arrayRead(E, Idx.expr()); }
  /// Struct field projection.
  Val field(const std::string &Name) const { return getField(E, Name); }
  /// Collection length.
  Val len() const { return arrayLen(E); }

private:
  ExprRef E;
};

Val operator+(Val A, Val B);
Val operator-(Val A, Val B);
Val operator*(Val A, Val B);
Val operator/(Val A, Val B);
Val operator%(Val A, Val B);
Val operator==(Val A, Val B);
Val operator!=(Val A, Val B);
Val operator<(Val A, Val B);
Val operator<=(Val A, Val B);
Val operator>(Val A, Val B);
Val operator>=(Val A, Val B);
Val operator&&(Val A, Val B);
Val operator||(Val A, Val B);
Val operator-(Val A);

Val vmin(Val A, Val B);
Val vmax(Val A, Val B);
Val vselect(Val C, Val A, Val B);
Val vexp(Val A);
Val vlog(Val A);
Val vsqrt(Val A);
Val vabs(Val A);
Val toF64(Val A);
Val toI64(Val A);

using Fn1 = std::function<Val(Val)>;
using Fn2 = std::function<Val(Val, Val)>;

//===----------------------------------------------------------------------===//
// Core patterns (all lower to multiloops).
//===----------------------------------------------------------------------===//

/// `Collect` over [0, n) producing F(i).
Val tabulate(Val N, const Fn1 &F);

/// Element-wise map.
Val map(Val Arr, const Fn1 &F);

/// Two-collection map (Table 1 "multiple collections").
Val zipWith(Val A, Val B, const Fn2 &F);

/// Keeps elements satisfying \p Pred.
Val filter(Val Arr, const Fn1 &Pred);

/// Map to collections, then concatenate.
Val flatMap(Val Arr, const Fn1 &F);

/// Reduction over elements with operator \p F (associative).
Val reduce(Val Arr, const Fn2 &F);

/// Reduction of F(i) over [0, n).
Val reduceRange(Val N, const Fn1 &F, const Fn2 &R);

/// Sum of elements; elements may be scalars or vectors (vector sums use a
/// zipWith(+) reduction, the paper's "sum of vectors").
Val sum(Val Arr);

/// Sum of F(i) for i in [0, n).
Val sumRange(Val N, const Fn1 &F);

/// Index of the minimum element (first occurrence on ties).
Val minIndex(Val Arr);

/// Index i in [0, n) minimizing F(i) (first occurrence on ties).
Val minIndexBy(Val N, const Fn1 &F);

/// Hash-bucket groupBy: returns {keys: Array[i64], values: Array[Array[V]]}
/// in first-occurrence key order.
Val groupBy(Val Arr, const Fn1 &KeyF);

/// Dense-bucket per-key reduction of F(i) over [0, n): result has NumKeys
/// entries indexed by key. This is the paper's `bucketReduce(true, key, f,
/// +)` building block (Fig. 5).
Val bucketReduceDense(Val N, const Fn1 &KeyF, const Fn1 &F, const Fn2 &R,
                      Val NumKeys);

/// Hash-bucket per-key reduction: {keys, values}.
Val bucketReduceHash(Val N, const Fn1 &KeyF, const Fn1 &F, const Fn2 &R);

//===----------------------------------------------------------------------===//
// Matrices: struct {data: Array[f64], rows: i64, cols: i64}, row-major.
//===----------------------------------------------------------------------===//

/// Dense matrix wrapper.
class Mat {
public:
  explicit Mat(Val V) : V(V) {}

  const Val &val() const { return V; }
  Val data() const { return V.field("data"); }
  Val rows() const { return V.field("rows"); }
  Val cols() const { return V.field("cols"); }

  /// Scalar element (i, j).
  Val at(Val I, Val J) const { return data()(I * cols() + J); }

  /// Row i materialized as a vector (fused away by pipeline fusion in
  /// practice).
  Val row(Val I) const;

  /// Collect over rows: F receives the row index. (The paper's mapRows
  /// passes the row; index form composes better with `at`, and `row(i)`
  /// recovers the row.)
  Val mapRowsIdx(const Fn1 &F) const;

  /// Column-wise sums: a vector of length cols().
  Val sumRowsVec() const;

  /// The matrix type used by all apps.
  static TypeRef type();

private:
  Val V;
};

/// Matrix-shaped struct from its three components.
Val makeMat(Val Data, Val Rows, Val Cols);

/// Squared Euclidean distance between two equal-length vectors.
Val distSq(Val A, Val B);

/// Dot product of two equal-length vectors.
Val dot(Val A, Val B);

/// Logistic function 1 / (1 + exp(-z)).
Val sigmoid(Val Z);

//===----------------------------------------------------------------------===//
// Program assembly.
//===----------------------------------------------------------------------===//

/// Collects the inputs of a program under construction.
class ProgramBuilder {
public:
  /// Declares an input dataset with the Section 4.1 annotation.
  Val in(const std::string &Name, TypeRef Ty,
         LayoutHint Hint = LayoutHint::Default);

  /// Declares a matrix input; returns the wrapper.
  Mat inMat(const std::string &Name, LayoutHint Hint = LayoutHint::Default);

  /// Declares an Array[f64] input.
  Val inVecF64(const std::string &Name,
               LayoutHint Hint = LayoutHint::Default);

  /// Declares an Array[i64] input.
  Val inVecI64(const std::string &Name,
               LayoutHint Hint = LayoutHint::Default);

  /// Declares a scalar i64 input (e.g. a hyper-parameter).
  Val inI64(const std::string &Name);

  /// Declares a scalar f64 input.
  Val inF64(const std::string &Name);

  /// Finishes the program with result \p Result.
  Program build(Val Result);

private:
  std::vector<std::shared_ptr<const InputExpr>> Inputs;
};

} // namespace frontend
} // namespace dmll

#endif // DMLL_FRONTEND_FRONTEND_H
