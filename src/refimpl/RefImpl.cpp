//===- refimpl/RefImpl.cpp -------------------------------------*- C++ -*-===//

#include "refimpl/RefImpl.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

using namespace dmll;
using namespace dmll::refimpl;
using data::CsrGraph;
using data::MatrixData;

std::vector<std::vector<double>>
refimpl::kmeansStep(const MatrixData &M, const MatrixData &Clusters) {
  size_t K = Clusters.Rows, Cols = M.Cols;
  std::vector<double> Sums(K * Cols, 0.0);
  std::vector<int64_t> Counts(K, 0);
  for (size_t I = 0; I < M.Rows; ++I) {
    size_t Best = 0;
    double BestD = std::numeric_limits<double>::infinity();
    for (size_t C = 0; C < K; ++C) {
      double D = 0;
      for (size_t J = 0; J < Cols; ++J) {
        double T = M.Data[I * Cols + J] - Clusters.Data[C * Cols + J];
        D += T * T;
      }
      if (D < BestD) {
        BestD = D;
        Best = C;
      }
    }
    for (size_t J = 0; J < Cols; ++J)
      Sums[Best * Cols + J] += M.Data[I * Cols + J];
    ++Counts[Best];
  }
  std::vector<std::vector<double>> Out(K);
  for (size_t C = 0; C < K; ++C) {
    if (!Counts[C])
      continue; // empty cluster -> empty row
    Out[C].resize(Cols);
    for (size_t J = 0; J < Cols; ++J)
      Out[C][J] = Sums[C * Cols + J] / static_cast<double>(Counts[C]);
  }
  return Out;
}

std::vector<double> refimpl::logregStep(const MatrixData &X,
                                        const std::vector<double> &Y,
                                        const std::vector<double> &Theta,
                                        double Alpha) {
  size_t Rows = X.Rows, Cols = X.Cols;
  std::vector<double> Grad(Cols, 0.0);
  for (size_t I = 0; I < Rows; ++I) {
    double Dot = 0;
    for (size_t K = 0; K < Cols; ++K)
      Dot += Theta[K] * X.Data[I * Cols + K];
    double Err = Y[I] - 1.0 / (1.0 + std::exp(-Dot));
    for (size_t J = 0; J < Cols; ++J)
      Grad[J] += X.Data[I * Cols + J] * Err;
  }
  std::vector<double> NewTheta(Cols);
  for (size_t J = 0; J < Cols; ++J)
    NewTheta[J] = Theta[J] + Alpha * Grad[J];
  return NewTheta;
}

GdaResult refimpl::gda(const MatrixData &X, const std::vector<int64_t> &Y) {
  size_t Rows = X.Rows, Cols = X.Cols;
  GdaResult R;
  R.Mu0.assign(Cols, 0.0);
  R.Mu1.assign(Cols, 0.0);
  for (size_t I = 0; I < Rows; ++I) {
    auto &Mu = Y[I] ? R.Mu1 : R.Mu0;
    (Y[I] ? R.Count1 : R.Count0) += 1;
    for (size_t J = 0; J < Cols; ++J)
      Mu[J] += X.Data[I * Cols + J];
  }
  for (size_t J = 0; J < Cols; ++J) {
    R.Mu0[J] /= static_cast<double>(std::max<int64_t>(R.Count0, 1));
    R.Mu1[J] /= static_cast<double>(std::max<int64_t>(R.Count1, 1));
  }
  R.Sigma.assign(Cols * Cols, 0.0);
  std::vector<double> Dx(Cols);
  for (size_t I = 0; I < Rows; ++I) {
    const auto &Mu = Y[I] ? R.Mu1 : R.Mu0;
    for (size_t J = 0; J < Cols; ++J)
      Dx[J] = X.Data[I * Cols + J] - Mu[J];
    for (size_t A = 0; A < Cols; ++A)
      for (size_t B = 0; B < Cols; ++B)
        R.Sigma[A * Cols + B] += Dx[A] * Dx[B];
  }
  R.Phi = static_cast<double>(R.Count1) / static_cast<double>(Rows);
  return R;
}

Q1Result refimpl::tpchQ1(const data::LineItems &L, int64_t Cutoff) {
  Q1Result R;
  std::unordered_map<int64_t, size_t> KeyIdx;
  for (size_t I = 0; I < L.size(); ++I) {
    if (L.ShipDate[I] > Cutoff)
      continue;
    int64_t Key = L.ReturnFlag[I] * 256 + L.LineStatus[I];
    auto [It, Inserted] = KeyIdx.emplace(Key, R.Keys.size());
    if (Inserted) {
      R.Keys.push_back(Key);
      R.SumQty.push_back(0);
      R.SumBase.push_back(0);
      R.SumDisc.push_back(0);
      R.SumCharge.push_back(0);
      R.Count.push_back(0);
    }
    size_t G = It->second;
    double Price = L.ExtendedPrice[I], Disc = L.Discount[I], Tax = L.Tax[I];
    R.SumQty[G] += L.Quantity[I];
    R.SumBase[G] += Price;
    R.SumDisc[G] += Price * (1.0 - Disc);
    R.SumCharge[G] += Price * (1.0 - Disc) * (1.0 + Tax);
    R.Count[G] += 1;
  }
  return R;
}

GeneResult refimpl::gene(const data::GeneReads &G, double MinQuality) {
  // Hand-optimized: open-addressing barcode table (the std hash map costs
  // ~2x here and a performance programmer would not use it).
  GeneResult R;
  size_t Cap = 1;
  while (Cap < G.size())
    Cap <<= 1;
  std::vector<int64_t> Slots(Cap, -1);
  std::vector<size_t> Index(Cap, 0);
  size_t Mask = Cap - 1;
  for (size_t I = 0; I < G.size(); ++I) {
    if (G.Quality[I] < MinQuality)
      continue;
    int64_t Key = G.Barcode[I];
    size_t H = static_cast<size_t>(Key * 0x9e3779b97f4a7c15LL) & Mask;
    while (Slots[H] != -1 && Slots[H] != Key)
      H = (H + 1) & Mask;
    if (Slots[H] == -1) {
      Slots[H] = Key;
      Index[H] = R.Keys.size();
      R.Keys.push_back(Key);
      R.Counts.push_back(0);
      R.TotalLen.push_back(0);
    }
    R.Counts[Index[H]] += 1;
    R.TotalLen[Index[H]] += G.Length[I];
  }
  return R;
}

std::vector<double> refimpl::pageRankStep(const CsrGraph &In,
                                          const std::vector<int64_t> &OutDeg,
                                          const std::vector<double> &Ranks) {
  size_t N = static_cast<size_t>(In.NumV);
  std::vector<double> Out(N);
  double Base = 0.15 / static_cast<double>(N);
  for (size_t V = 0; V < N; ++V) {
    double Sum = 0;
    for (int64_t E = In.Offsets[V]; E < In.Offsets[V + 1]; ++E) {
      int64_t U = In.Edges[static_cast<size_t>(E)];
      Sum += Ranks[static_cast<size_t>(U)] /
             static_cast<double>(
                 std::max<int64_t>(OutDeg[static_cast<size_t>(U)], 1));
    }
    Out[V] = Base + 0.85 * Sum;
  }
  return Out;
}

int64_t refimpl::triangleCount(const CsrGraph &G) {
  int64_t Count = 0;
  for (int64_t U = 0; U < G.NumV; ++U) {
    for (int64_t E = G.Offsets[U]; E < G.Offsets[U + 1]; ++E) {
      int64_t V = G.Edges[static_cast<size_t>(E)];
      if (U >= V)
        continue;
      // Merge-intersect adj(U) and adj(V), counting common neighbors > V.
      int64_t A = G.Offsets[U], AEnd = G.Offsets[U + 1];
      int64_t B = G.Offsets[V], BEnd = G.Offsets[V + 1];
      while (A < AEnd && B < BEnd) {
        int64_t WA = G.Edges[static_cast<size_t>(A)];
        int64_t WB = G.Edges[static_cast<size_t>(B)];
        if (WA < WB) {
          ++A;
        } else if (WA > WB) {
          ++B;
        } else {
          Count += WA > V;
          ++A;
          ++B;
        }
      }
    }
  }
  return Count;
}

std::vector<int64_t> refimpl::knnPredict(const MatrixData &Train,
                                         const std::vector<int64_t> &TrainY,
                                         const MatrixData &Test) {
  std::vector<int64_t> Out(Test.Rows);
  for (size_t T = 0; T < Test.Rows; ++T) {
    size_t Best = 0;
    double BestD = std::numeric_limits<double>::infinity();
    for (size_t R = 0; R < Train.Rows; ++R) {
      double D = 0;
      for (size_t J = 0; J < Train.Cols; ++J) {
        double X = Train.Data[R * Train.Cols + J] -
                   Test.Data[T * Test.Cols + J];
        D += X * X;
      }
      if (D < BestD) {
        BestD = D;
        Best = R;
      }
    }
    Out[T] = TrainY[Best];
  }
  return Out;
}

NbResult refimpl::naiveBayes(const MatrixData &X,
                             const std::vector<int64_t> &Y,
                             int64_t NumClasses) {
  NbResult R;
  std::vector<int64_t> Counts(static_cast<size_t>(NumClasses), 0);
  R.Means.assign(static_cast<size_t>(NumClasses),
                 std::vector<double>(X.Cols, 0.0));
  for (size_t I = 0; I < X.Rows; ++I) {
    size_t C = static_cast<size_t>(Y[I]);
    ++Counts[C];
    for (size_t J = 0; J < X.Cols; ++J)
      R.Means[C][J] += X.Data[I * X.Cols + J];
  }
  for (size_t C = 0; C < static_cast<size_t>(NumClasses); ++C) {
    R.Priors.push_back(static_cast<double>(Counts[C]) /
                       static_cast<double>(X.Rows));
    for (double &M : R.Means[C])
      M /= static_cast<double>(std::max<int64_t>(Counts[C], 1));
  }
  return R;
}
