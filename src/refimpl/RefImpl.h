//===- refimpl/RefImpl.h - Hand-optimized C++ baselines --------*- C++ -*-===//
//
// Part of the DMLL reproduction of Brown et al., CGO 2016.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-optimized sequential C++ implementations of every benchmark: the
/// "C++" column of Table 2 and the correctness oracles for the DMLL
/// programs. They follow the paper's description of such code — tight
/// loops over flat arrays, aggressive buffer reuse, no intermediate
/// allocations — and reproduce the interpreter's defined semantics (reduce
/// in index order, empty reductions produce zeros, hash groups in
/// first-occurrence order) so results are comparable bit-for-bit modulo
/// float tolerance.
///
//===----------------------------------------------------------------------===//

#ifndef DMLL_REFIMPL_REFIMPL_H
#define DMLL_REFIMPL_REFIMPL_H

#include "data/Datasets.h"

#include <cstdint>
#include <vector>

namespace dmll {
namespace refimpl {

/// One k-means step: new centroid per cluster (empty vector for an empty
/// cluster, matching the DMLL program's semantics).
std::vector<std::vector<double>> kmeansStep(const data::MatrixData &M,
                                            const data::MatrixData &Clusters);

/// One logistic-regression gradient step.
std::vector<double> logregStep(const data::MatrixData &X,
                               const std::vector<double> &Y,
                               const std::vector<double> &Theta,
                               double Alpha);

/// GDA sufficient statistics.
struct GdaResult {
  double Phi = 0;
  std::vector<double> Mu0, Mu1, Sigma;
  int64_t Count0 = 0, Count1 = 0;
};
GdaResult gda(const data::MatrixData &X, const std::vector<int64_t> &Y);

/// TPC-H Query 1 aggregates, groups in first-occurrence order over the
/// filtered items.
struct Q1Result {
  std::vector<int64_t> Keys;
  std::vector<double> SumQty, SumBase, SumDisc, SumCharge;
  std::vector<int64_t> Count;
};
Q1Result tpchQ1(const data::LineItems &L, int64_t Cutoff);

/// Gene barcoding counts / total lengths per barcode.
struct GeneResult {
  std::vector<int64_t> Keys, Counts, TotalLen;
};
GeneResult gene(const data::GeneReads &G, double MinQuality);

/// One PageRank iteration. \p In is the incoming-edge CSR; \p OutDeg the
/// original out-degrees.
std::vector<double> pageRankStep(const data::CsrGraph &In,
                                 const std::vector<int64_t> &OutDeg,
                                 const std::vector<double> &Ranks);

/// Exact triangle count (merge-based intersection on sorted adjacency).
int64_t triangleCount(const data::CsrGraph &G);

/// 1-NN predictions for each row of \p Test.
std::vector<int64_t> knnPredict(const data::MatrixData &Train,
                                const std::vector<int64_t> &TrainY,
                                const data::MatrixData &Test);

/// Naive Bayes conditional means and priors.
struct NbResult {
  std::vector<double> Priors;
  std::vector<std::vector<double>> Means;
};
NbResult naiveBayes(const data::MatrixData &X, const std::vector<int64_t> &Y,
                    int64_t NumClasses);

} // namespace refimpl
} // namespace dmll

#endif // DMLL_REFIMPL_REFIMPL_H
