
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Affine.cpp" "src/CMakeFiles/dmll.dir/analysis/Affine.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/analysis/Affine.cpp.o.d"
  "/root/repo/src/analysis/Cost.cpp" "src/CMakeFiles/dmll.dir/analysis/Cost.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/analysis/Cost.cpp.o.d"
  "/root/repo/src/analysis/Partitioning.cpp" "src/CMakeFiles/dmll.dir/analysis/Partitioning.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/analysis/Partitioning.cpp.o.d"
  "/root/repo/src/analysis/Stencil.cpp" "src/CMakeFiles/dmll.dir/analysis/Stencil.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/analysis/Stencil.cpp.o.d"
  "/root/repo/src/apps/Gda.cpp" "src/CMakeFiles/dmll.dir/apps/Gda.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/apps/Gda.cpp.o.d"
  "/root/repo/src/apps/Gene.cpp" "src/CMakeFiles/dmll.dir/apps/Gene.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/apps/Gene.cpp.o.d"
  "/root/repo/src/apps/Gibbs.cpp" "src/CMakeFiles/dmll.dir/apps/Gibbs.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/apps/Gibbs.cpp.o.d"
  "/root/repo/src/apps/KMeans.cpp" "src/CMakeFiles/dmll.dir/apps/KMeans.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/apps/KMeans.cpp.o.d"
  "/root/repo/src/apps/Knn.cpp" "src/CMakeFiles/dmll.dir/apps/Knn.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/apps/Knn.cpp.o.d"
  "/root/repo/src/apps/LogReg.cpp" "src/CMakeFiles/dmll.dir/apps/LogReg.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/apps/LogReg.cpp.o.d"
  "/root/repo/src/apps/NaiveBayes.cpp" "src/CMakeFiles/dmll.dir/apps/NaiveBayes.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/apps/NaiveBayes.cpp.o.d"
  "/root/repo/src/apps/PageRank.cpp" "src/CMakeFiles/dmll.dir/apps/PageRank.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/apps/PageRank.cpp.o.d"
  "/root/repo/src/apps/TpchQ1.cpp" "src/CMakeFiles/dmll.dir/apps/TpchQ1.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/apps/TpchQ1.cpp.o.d"
  "/root/repo/src/apps/Triangle.cpp" "src/CMakeFiles/dmll.dir/apps/Triangle.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/apps/Triangle.cpp.o.d"
  "/root/repo/src/codegen/CppEmitter.cpp" "src/CMakeFiles/dmll.dir/codegen/CppEmitter.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/codegen/CppEmitter.cpp.o.d"
  "/root/repo/src/codegen/CudaEmitter.cpp" "src/CMakeFiles/dmll.dir/codegen/CudaEmitter.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/codegen/CudaEmitter.cpp.o.d"
  "/root/repo/src/data/Datasets.cpp" "src/CMakeFiles/dmll.dir/data/Datasets.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/data/Datasets.cpp.o.d"
  "/root/repo/src/frontend/Frontend.cpp" "src/CMakeFiles/dmll.dir/frontend/Frontend.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/frontend/Frontend.cpp.o.d"
  "/root/repo/src/graph/Graph.cpp" "src/CMakeFiles/dmll.dir/graph/Graph.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/graph/Graph.cpp.o.d"
  "/root/repo/src/graph/PushPull.cpp" "src/CMakeFiles/dmll.dir/graph/PushPull.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/graph/PushPull.cpp.o.d"
  "/root/repo/src/interp/Interp.cpp" "src/CMakeFiles/dmll.dir/interp/Interp.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/interp/Interp.cpp.o.d"
  "/root/repo/src/interp/Value.cpp" "src/CMakeFiles/dmll.dir/interp/Value.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/interp/Value.cpp.o.d"
  "/root/repo/src/ir/Builder.cpp" "src/CMakeFiles/dmll.dir/ir/Builder.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/ir/Builder.cpp.o.d"
  "/root/repo/src/ir/Expr.cpp" "src/CMakeFiles/dmll.dir/ir/Expr.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/ir/Expr.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/CMakeFiles/dmll.dir/ir/Printer.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/ir/Printer.cpp.o.d"
  "/root/repo/src/ir/Traversal.cpp" "src/CMakeFiles/dmll.dir/ir/Traversal.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/ir/Traversal.cpp.o.d"
  "/root/repo/src/ir/Type.cpp" "src/CMakeFiles/dmll.dir/ir/Type.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/ir/Type.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/CMakeFiles/dmll.dir/ir/Verifier.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/ir/Verifier.cpp.o.d"
  "/root/repo/src/refimpl/RefImpl.cpp" "src/CMakeFiles/dmll.dir/refimpl/RefImpl.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/refimpl/RefImpl.cpp.o.d"
  "/root/repo/src/runtime/DistArray.cpp" "src/CMakeFiles/dmll.dir/runtime/DistArray.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/runtime/DistArray.cpp.o.d"
  "/root/repo/src/runtime/Executor.cpp" "src/CMakeFiles/dmll.dir/runtime/Executor.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/runtime/Executor.cpp.o.d"
  "/root/repo/src/runtime/ThreadPool.cpp" "src/CMakeFiles/dmll.dir/runtime/ThreadPool.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/runtime/ThreadPool.cpp.o.d"
  "/root/repo/src/sim/MachineModel.cpp" "src/CMakeFiles/dmll.dir/sim/MachineModel.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/sim/MachineModel.cpp.o.d"
  "/root/repo/src/sim/Simulator.cpp" "src/CMakeFiles/dmll.dir/sim/Simulator.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/sim/Simulator.cpp.o.d"
  "/root/repo/src/support/Error.cpp" "src/CMakeFiles/dmll.dir/support/Error.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/support/Error.cpp.o.d"
  "/root/repo/src/support/Rng.cpp" "src/CMakeFiles/dmll.dir/support/Rng.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/support/Rng.cpp.o.d"
  "/root/repo/src/support/Table.cpp" "src/CMakeFiles/dmll.dir/support/Table.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/support/Table.cpp.o.d"
  "/root/repo/src/systems/Features.cpp" "src/CMakeFiles/dmll.dir/systems/Features.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/systems/Features.cpp.o.d"
  "/root/repo/src/systems/Systems.cpp" "src/CMakeFiles/dmll.dir/systems/Systems.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/systems/Systems.cpp.o.d"
  "/root/repo/src/transform/ConditionalReduce.cpp" "src/CMakeFiles/dmll.dir/transform/ConditionalReduce.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/transform/ConditionalReduce.cpp.o.d"
  "/root/repo/src/transform/Cse.cpp" "src/CMakeFiles/dmll.dir/transform/Cse.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/transform/Cse.cpp.o.d"
  "/root/repo/src/transform/Dce.cpp" "src/CMakeFiles/dmll.dir/transform/Dce.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/transform/Dce.cpp.o.d"
  "/root/repo/src/transform/GroupByReduce.cpp" "src/CMakeFiles/dmll.dir/transform/GroupByReduce.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/transform/GroupByReduce.cpp.o.d"
  "/root/repo/src/transform/HorizontalFusion.cpp" "src/CMakeFiles/dmll.dir/transform/HorizontalFusion.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/transform/HorizontalFusion.cpp.o.d"
  "/root/repo/src/transform/InterchangeReduce.cpp" "src/CMakeFiles/dmll.dir/transform/InterchangeReduce.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/transform/InterchangeReduce.cpp.o.d"
  "/root/repo/src/transform/Pipeline.cpp" "src/CMakeFiles/dmll.dir/transform/Pipeline.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/transform/Pipeline.cpp.o.d"
  "/root/repo/src/transform/Rewriter.cpp" "src/CMakeFiles/dmll.dir/transform/Rewriter.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/transform/Rewriter.cpp.o.d"
  "/root/repo/src/transform/Soa.cpp" "src/CMakeFiles/dmll.dir/transform/Soa.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/transform/Soa.cpp.o.d"
  "/root/repo/src/transform/VerticalFusion.cpp" "src/CMakeFiles/dmll.dir/transform/VerticalFusion.cpp.o" "gcc" "src/CMakeFiles/dmll.dir/transform/VerticalFusion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
