# Empty compiler generated dependencies file for dmll.
# This may be replaced when dependencies are built.
