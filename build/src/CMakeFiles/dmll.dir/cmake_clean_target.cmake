file(REMOVE_RECURSE
  "libdmll.a"
)
