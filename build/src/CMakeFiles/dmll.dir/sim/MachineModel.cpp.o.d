src/CMakeFiles/dmll.dir/sim/MachineModel.cpp.o: \
 /root/repo/src/sim/MachineModel.cpp /usr/include/stdc-predef.h \
 /root/repo/src/sim/MachineModel.h
