file(REMOVE_RECURSE
  "CMakeFiles/ir_tests.dir/FrontendTest.cpp.o"
  "CMakeFiles/ir_tests.dir/FrontendTest.cpp.o.d"
  "CMakeFiles/ir_tests.dir/InterpTest.cpp.o"
  "CMakeFiles/ir_tests.dir/InterpTest.cpp.o.d"
  "CMakeFiles/ir_tests.dir/IrExprTest.cpp.o"
  "CMakeFiles/ir_tests.dir/IrExprTest.cpp.o.d"
  "CMakeFiles/ir_tests.dir/IrTraversalTest.cpp.o"
  "CMakeFiles/ir_tests.dir/IrTraversalTest.cpp.o.d"
  "CMakeFiles/ir_tests.dir/IrTypeTest.cpp.o"
  "CMakeFiles/ir_tests.dir/IrTypeTest.cpp.o.d"
  "ir_tests"
  "ir_tests.pdb"
  "ir_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
