
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/FrontendTest.cpp" "tests/CMakeFiles/ir_tests.dir/FrontendTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/FrontendTest.cpp.o.d"
  "/root/repo/tests/InterpTest.cpp" "tests/CMakeFiles/ir_tests.dir/InterpTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/InterpTest.cpp.o.d"
  "/root/repo/tests/IrExprTest.cpp" "tests/CMakeFiles/ir_tests.dir/IrExprTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/IrExprTest.cpp.o.d"
  "/root/repo/tests/IrTraversalTest.cpp" "tests/CMakeFiles/ir_tests.dir/IrTraversalTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/IrTraversalTest.cpp.o.d"
  "/root/repo/tests/IrTypeTest.cpp" "tests/CMakeFiles/ir_tests.dir/IrTypeTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/IrTypeTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dmll.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
