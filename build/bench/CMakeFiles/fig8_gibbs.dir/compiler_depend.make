# Empty compiler generated dependencies file for fig8_gibbs.
# This may be replaced when dependencies are built.
