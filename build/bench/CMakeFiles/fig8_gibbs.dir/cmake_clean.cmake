file(REMOVE_RECURSE
  "CMakeFiles/fig8_gibbs.dir/fig8_gibbs.cpp.o"
  "CMakeFiles/fig8_gibbs.dir/fig8_gibbs.cpp.o.d"
  "fig8_gibbs"
  "fig8_gibbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_gibbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
