# Empty dependencies file for fig8_graphs.
# This may be replaced when dependencies are built.
