file(REMOVE_RECURSE
  "CMakeFiles/fig8_graphs.dir/fig8_graphs.cpp.o"
  "CMakeFiles/fig8_graphs.dir/fig8_graphs.cpp.o.d"
  "fig8_graphs"
  "fig8_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
