# Empty compiler generated dependencies file for fig6_transformations.
# This may be replaced when dependencies are built.
