file(REMOVE_RECURSE
  "CMakeFiles/fig6_transformations.dir/fig6_transformations.cpp.o"
  "CMakeFiles/fig6_transformations.dir/fig6_transformations.cpp.o.d"
  "fig6_transformations"
  "fig6_transformations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_transformations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
