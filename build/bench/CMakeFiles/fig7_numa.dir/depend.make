# Empty dependencies file for fig7_numa.
# This may be replaced when dependencies are built.
