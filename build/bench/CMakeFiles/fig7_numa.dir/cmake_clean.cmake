file(REMOVE_RECURSE
  "CMakeFiles/fig7_numa.dir/fig7_numa.cpp.o"
  "CMakeFiles/fig7_numa.dir/fig7_numa.cpp.o.d"
  "fig7_numa"
  "fig7_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
