file(REMOVE_RECURSE
  "CMakeFiles/micro_patterns.dir/micro_patterns.cpp.o"
  "CMakeFiles/micro_patterns.dir/micro_patterns.cpp.o.d"
  "micro_patterns"
  "micro_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
