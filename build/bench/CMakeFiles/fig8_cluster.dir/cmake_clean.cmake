file(REMOVE_RECURSE
  "CMakeFiles/fig8_cluster.dir/fig8_cluster.cpp.o"
  "CMakeFiles/fig8_cluster.dir/fig8_cluster.cpp.o.d"
  "fig8_cluster"
  "fig8_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
