# Empty compiler generated dependencies file for fig8_cluster.
# This may be replaced when dependencies are built.
